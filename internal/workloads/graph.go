package workloads

// Graph workloads over a seeded CSR (compressed sparse row) graph — the
// hard-to-predict scenario pack. Where the SPEC95-style set's branches
// mostly test loop counters and static tables, every interesting branch
// here tests a *loaded* adjacency value: BFS's visited check, PageRank's
// dangling-node and convergence tests, and the label-propagation ordering
// comparisons are all data-dependent control flow, the modern frontier the
// related work (LDBP, graph-workload branch studies) targets.
//
// All three share one input format produced by csrInput: the rounds word,
// then offsets[0..graphNodes] (offsets[graphNodes] = edge count M, which
// the programs load and use as a data-dependent loop bound), then the M
// adjacency targets. Each round rewires one edge in place, so rounds
// differ and the structure drifts over the run. Register conventions
// follow the rest of the package: $s7 rounds, $s6 round counter, $s5
// checksum emitted with `out` at the end.

// graphNodes is the CSR node count shared by the generator and the
// assembly sources (which hard-code the 128-entry table scans and the
// &127 node masks).
const graphNodes = 128

// graphMaxDegree bounds a node's out-degree; degree 0 (dangling) is
// allowed so the dangling-node branches are live.
const graphMaxDegree = 10

func init() {
	register(&Workload{
		Name:     "bfs",
		FullName: "graph breadth-first search (CSR)",
		Graph:    true,
		Rounds:   18,
		Source:   bfsSrc,
		Input:    csrInput,
	})

	register(&Workload{
		Name:     "pgr",
		FullName: "graph PageRank (fixed-point, CSR)",
		Graph:    true,
		Rounds:   8,
		Source:   pgrSrc,
		Input:    csrInput,
	})

	register(&Workload{
		Name:     "ccp",
		FullName: "graph connected components (label propagation, CSR)",
		Graph:    true,
		Rounds:   4,
		Source:   ccpSrc,
		Input:    csrInput,
	})
}

// csrInput generates a random directed graph in CSR form:
// [rounds, offsets[0..graphNodes], adj[0..M-1]]. Out-degrees are uniform
// in [0, graphMaxDegree] (dangling nodes included), targets uniform over
// the nodes.
func csrInput(rounds int, seed uint64) []uint32 {
	r := newRNG(seed)
	degs := make([]uint32, graphNodes)
	var m uint32
	for i := range degs {
		degs[i] = r.intn(graphMaxDegree + 1)
		m += degs[i]
	}
	words := make([]uint32, 0, graphNodes+1+int(m))
	var off uint32
	for i := 0; i < graphNodes; i++ {
		words = append(words, off)
		off += degs[i]
	}
	words = append(words, off) // offsets[graphNodes] == M
	for e := uint32(0); e < m; e++ {
		words = append(words, r.intn(graphNodes))
	}
	return prefixInput(rounds, words)
}

// bfsSrc: per-round breadth-first search from a rotating source with an
// explicit frontier queue. The visited test (`dist[v] == -1`) branches on
// a value loaded through two levels of indirection (adj -> dist), the
// shape the branch-predictor graph studies call out.
const bfsSrc = `
	.data
offs:	.space 516		# offsets[0..128]
adj:	.space 5120		# up to 1280 edges
dist:	.space 512
queue:	.space 512
	.text
main:	in $s7			# rounds
	li $s6, 0
	li $s5, 0
	la $s0, offs
	la $s1, adj
	la $s3, dist
	la $s4, queue
	li $t0, 0
roff:	in $t1
	sll $t2, $t0, 2
	addu $t2, $t2, $s0
	sw $t1, 0($t2)
	addiu $t0, $t0, 1
	slti $t3, $t0, 129
	bne $t3, $zero, roff
	lw $s2, 512($s0)	# M = offsets[128]
	li $t0, 0
radj:	slt $t3, $t0, $s2
	beq $t3, $zero, round
	in $t1
	sll $t2, $t0, 2
	addu $t2, $t2, $s1
	sw $t1, 0($t2)
	addiu $t0, $t0, 1
	j radj
round:	# rewire edge (round*37+11) % M so rounds differ
	beq $s2, $zero, skiprw
	li $t0, 37
	mul $t0, $s6, $t0
	addiu $t0, $t0, 11
	remu $t0, $t0, $s2
	sll $t0, $t0, 2
	addu $t0, $t0, $s1
	lw $t1, 0($t0)
	addu $t1, $t1, $s6
	addiu $t1, $t1, 1
	andi $t1, $t1, 127
	sw $t1, 0($t0)
skiprw:	li $t0, 0		# dist[i] = -1
	addiu $t4, $zero, -1
dinit:	sll $t1, $t0, 2
	addu $t1, $t1, $s3
	sw $t4, 0($t1)
	addiu $t0, $t0, 1
	slti $t2, $t0, 128
	bne $t2, $zero, dinit
	andi $a0, $s6, 127	# source rotates with the round
	sll $t0, $a0, 2
	addu $t0, $t0, $s3
	sw $zero, 0($t0)	# dist[src] = 0
	sw $a0, 0($s4)		# queue[0] = src
	li $v1, 0		# head
	li $v0, 1		# tail
bfs:	slt $t0, $v1, $v0
	beq $t0, $zero, done
	sll $t0, $v1, 2
	addu $t0, $t0, $s4
	lw $a0, 0($t0)		# u = queue[head++]
	addiu $v1, $v1, 1
	sll $t0, $a0, 2
	addu $t1, $t0, $s3
	lw $a1, 0($t1)		# dist[u]
	addu $t2, $t0, $s0
	lw $a2, 0($t2)		# e = offs[u]
	lw $a3, 4($t2)		# end = offs[u+1]
edge:	slt $t0, $a2, $a3
	beq $t0, $zero, bfs
	sll $t0, $a2, 2
	addu $t0, $t0, $s1
	lw $t1, 0($t0)		# v = adj[e]
	sll $t2, $t1, 2
	addu $t2, $t2, $s3
	lw $t3, 0($t2)		# dist[v]
	addiu $t4, $zero, -1
	bne $t3, $t4, enext	# visited? (loaded-value branch)
	addiu $t5, $a1, 1
	sw $t5, 0($t2)		# dist[v] = dist[u]+1
	sll $t6, $v0, 2
	addu $t6, $t6, $s4
	sw $t1, 0($t6)		# queue[tail++] = v
	addiu $v0, $v0, 1
	addu $s5, $s5, $t1
	addu $s5, $s5, $t5
enext:	addiu $a2, $a2, 1
	j edge
done:	addu $s5, $s5, $v0	# += nodes reached
	addiu $s6, $s6, 1
	slt $t0, $s6, $s7
	bne $t0, $zero, round
	out $s5
	halt
`

// pgrSrc: fixed-point PageRank. Ranks stay warm across rounds, so after
// the first round each rewired edge only nudges the fixed point and the
// convergence branch (`delta < 2000`) exits the sweep loop after a
// data-dependent number of iterations. Dangling nodes (degree 0) take a
// separate branch and pool their mass.
const pgrSrc = `
	.data
offs:	.space 516
adj:	.space 5120
rank:	.space 512
next:	.space 512
	.text
main:	in $s7
	li $s6, 0
	li $s5, 0
	la $s0, offs
	la $s1, adj
	la $s3, rank
	la $s4, next
	li $t0, 0
roff:	in $t1
	sll $t2, $t0, 2
	addu $t2, $t2, $s0
	sw $t1, 0($t2)
	addiu $t0, $t0, 1
	slti $t3, $t0, 129
	bne $t3, $zero, roff
	lw $s2, 512($s0)	# M
	li $t0, 0
radj:	slt $t3, $t0, $s2
	beq $t3, $zero, rdone
	in $t1
	sll $t2, $t0, 2
	addu $t2, $t2, $s1
	sw $t1, 0($t2)
	addiu $t0, $t0, 1
	j radj
rdone:	li $t0, 0		# rank[i] = 10000 (once; warm across rounds)
rinit:	sll $t1, $t0, 2
	addu $t1, $t1, $s3
	li $t2, 10000
	sw $t2, 0($t1)
	addiu $t0, $t0, 1
	slti $t2, $t0, 128
	bne $t2, $zero, rinit
round:	# rewire edge (round*41+13) % M
	beq $s2, $zero, skiprw
	li $t0, 41
	mul $t0, $s6, $t0
	addiu $t0, $t0, 13
	remu $t0, $t0, $s2
	sll $t0, $t0, 2
	addu $t0, $t0, $s1
	lw $t1, 0($t0)
	addu $t1, $t1, $s6
	addiu $t1, $t1, 1
	andi $t1, $t1, 127
	sw $t1, 0($t0)
skiprw:	li $v1, 0		# iteration counter
iter:	li $t0, 0		# next[i] = 0
zinit:	sll $t1, $t0, 2
	addu $t1, $t1, $s4
	sw $zero, 0($t1)
	addiu $t0, $t0, 1
	slti $t2, $t0, 128
	bne $t2, $zero, zinit
	li $a3, 0		# dangling mass
	li $t0, 0		# u
push:	sll $t1, $t0, 2
	addu $t2, $t1, $s0
	lw $t3, 0($t2)		# e = offs[u]
	lw $t4, 4($t2)		# end
	addu $t5, $t1, $s3
	lw $t6, 0($t5)		# rank[u]
	sub $t7, $t4, $t3	# degree (loaded-value branch below)
	bne $t7, $zero, haved
	addu $a3, $a3, $t6	# dangling: pool the mass
	j pnext
haved:	divu $t8, $t6, $t7	# share = rank[u] / degree
eloop:	slt $t9, $t3, $t4
	beq $t9, $zero, pnext
	sll $t9, $t3, 2
	addu $t9, $t9, $s1
	lw $v0, 0($t9)		# v = adj[e]
	sll $v0, $v0, 2
	addu $v0, $v0, $s4
	lw $a0, 0($v0)
	addu $a0, $a0, $t8
	sw $a0, 0($v0)		# next[v] += share
	addiu $t3, $t3, 1
	j eloop
pnext:	addiu $t0, $t0, 1
	slti $t1, $t0, 128
	bne $t1, $zero, push
	srl $a3, $a3, 7		# base = 1500 + dangling/128
	addiu $a3, $a3, 1500
	li $a1, 0		# delta
	li $t0, 0
gath:	sll $t1, $t0, 2
	addu $t2, $t1, $s4
	lw $t3, 0($t2)		# next[v]
	li $t4, 85
	mul $t3, $t3, $t4
	li $t4, 100
	divu $t3, $t3, $t4
	addu $t3, $t3, $a3	# new rank (0.85 damping)
	addu $t5, $t1, $s3
	lw $t6, 0($t5)		# old rank
	sw $t3, 0($t5)
	sub $t7, $t3, $t6
	bgez $t7, dpos
	sub $t7, $zero, $t7
dpos:	addu $a1, $a1, $t7	# delta += |new - old|
	addiu $t0, $t0, 1
	slti $t1, $t0, 128
	bne $t1, $zero, gath
	addiu $v1, $v1, 1
	slti $t0, $v1, 8	# iteration cap
	beq $t0, $zero, conv
	slti $t0, $a1, 2000	# converged? (loaded-value branch)
	beq $t0, $zero, iter
conv:	andi $t0, $s6, 127	# checksum += rank[round&127] + iterations
	sll $t0, $t0, 2
	addu $t0, $t0, $s3
	lw $t1, 0($t0)
	addu $s5, $s5, $t1
	addu $s5, $s5, $v1
	addiu $s6, $s6, 1
	slt $t0, $s6, $s7
	bne $t0, $zero, round
	out $s5
	halt
`

// ccpSrc: connected components by min-label propagation, sweeping until a
// sweep makes no change — both the per-edge ordering branches and the
// outer sweep count depend entirely on loaded labels.
const ccpSrc = `
	.data
offs:	.space 516
adj:	.space 5120
label:	.space 512
	.text
main:	in $s7
	li $s6, 0
	li $s5, 0
	la $s0, offs
	la $s1, adj
	la $s3, label
	li $t0, 0
roff:	in $t1
	sll $t2, $t0, 2
	addu $t2, $t2, $s0
	sw $t1, 0($t2)
	addiu $t0, $t0, 1
	slti $t3, $t0, 129
	bne $t3, $zero, roff
	lw $s2, 512($s0)	# M
	li $t0, 0
radj:	slt $t3, $t0, $s2
	beq $t3, $zero, round
	in $t1
	sll $t2, $t0, 2
	addu $t2, $t2, $s1
	sw $t1, 0($t2)
	addiu $t0, $t0, 1
	j radj
round:	# rewire edge (round*53+17) % M
	beq $s2, $zero, skiprw
	li $t0, 53
	mul $t0, $s6, $t0
	addiu $t0, $t0, 17
	remu $t0, $t0, $s2
	sll $t0, $t0, 2
	addu $t0, $t0, $s1
	lw $t1, 0($t0)
	addu $t1, $t1, $s6
	addiu $t1, $t1, 3
	andi $t1, $t1, 127
	sw $t1, 0($t0)
skiprw:	li $t0, 0		# label[i] = i
linit:	sll $t1, $t0, 2
	addu $t1, $t1, $s3
	sw $t0, 0($t1)
	addiu $t0, $t0, 1
	slti $t2, $t0, 128
	bne $t2, $zero, linit
	li $s4, 0		# sweep count
sweep:	li $a3, 0		# changed
	li $t0, 0		# u
uloop:	sll $t1, $t0, 2
	addu $t1, $t1, $s3
	lw $t3, 0($t1)		# lu = label[u]
	sll $t2, $t0, 2
	addu $t2, $t2, $s0
	lw $a0, 0($t2)		# e = offs[u]
	lw $a1, 4($t2)		# end
eloop:	slt $t4, $a0, $a1
	beq $t4, $zero, unext
	sll $t4, $a0, 2
	addu $t4, $t4, $s1
	lw $t5, 0($t4)		# v = adj[e]
	sll $t6, $t5, 2
	addu $t6, $t6, $s3
	lw $t7, 0($t6)		# lv = label[v]
	slt $t8, $t7, $t3
	beq $t8, $zero, back	# lv < lu? (loaded-value branch)
	move $t3, $t7
	sw $t3, 0($t1)		# label[u] = lv
	addiu $a3, $a3, 1
	j enext
back:	slt $t8, $t3, $t7
	beq $t8, $zero, enext	# lu < lv?
	sw $t3, 0($t6)		# label[v] = lu
	addiu $a3, $a3, 1
enext:	addiu $a0, $a0, 1
	j eloop
unext:	addiu $t0, $t0, 1
	slti $t4, $t0, 128
	bne $t4, $zero, uloop
	addiu $s4, $s4, 1
	addu $s5, $s5, $a3	# checksum += changes this sweep
	bne $a3, $zero, sweep	# repeat while anything changed
	li $t0, 0		# checksum: labels + sweeps
csum:	sll $t1, $t0, 2
	addu $t1, $t1, $s3
	lw $t2, 0($t1)
	addu $s5, $s5, $t2
	addiu $t0, $t0, 1
	slti $t2, $t0, 128
	bne $t2, $zero, csum
	addu $s5, $s5, $s4
	addiu $s6, $s6, 1
	slt $t0, $s6, $s7
	bne $t0, $zero, round
	out $s5
	halt
`
