package workloads

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

func TestRegistryShape(t *testing.T) {
	if len(Integer()) != 8 {
		t.Errorf("integer set has %d workloads, want 8", len(Integer()))
	}
	if len(Float()) != 4 {
		t.Errorf("float set has %d workloads, want 4", len(Float()))
	}
	if len(Graph()) != 3 {
		t.Errorf("graph set has %d workloads, want 3", len(Graph()))
	}
	if len(All()) != 17 {
		t.Errorf("All() has %d workloads, want 17", len(All()))
	}
	wantGraph := []string{"bfs", "pgr", "ccp"}
	for i, w := range Graph() {
		if w.Name != wantGraph[i] {
			t.Errorf("graph[%d] = %s, want %s", i, w.Name, wantGraph[i])
		}
		if !w.Graph || w.Float {
			t.Errorf("%s flags wrong: Graph=%v Float=%v", w.Name, w.Graph, w.Float)
		}
	}
	wantInt := []string{"com", "gcc", "go", "ijp", "per", "m88", "vor", "xli"}
	for i, w := range Integer() {
		if w.Name != wantInt[i] {
			t.Errorf("integer[%d] = %s, want %s", i, w.Name, wantInt[i])
		}
		if w.Float {
			t.Errorf("%s marked float", w.Name)
		}
	}
	for _, w := range Float() {
		if !w.Float {
			t.Errorf("%s not marked float", w.Name)
		}
	}
	if _, ok := ByName("gcc"); !ok {
		t.Error("ByName(gcc) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if len(Names()) != 17 {
		t.Error("Names() wrong length")
	}
}

func TestAllWorkloadsAssemble(t *testing.T) {
	for _, w := range All() {
		if _, err := w.Program(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			// Run a reduced size to keep the suite fast; the program must
			// halt (not hit the step limit) and the trace must validate.
			rounds := w.Rounds / 10
			if rounds < 2 {
				rounds = 2
			}
			tr, err := w.TraceRounds(rounds, 1)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() == 0 {
				t.Fatal("empty trace")
			}
			last := tr.Events[tr.Len()-1]
			if last.Op != isa.OpHalt {
				t.Errorf("trace does not end in halt (ends %s) — step limit hit?", last.Op)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// The checksum must actually be emitted.
			found := false
			for i := range tr.Events {
				if tr.Events[i].Op == isa.OpOut {
					found = true
					break
				}
			}
			if !found {
				t.Error("no `out` in trace; checksum dead?")
			}
		})
	}
}

func TestDefaultTraceLengths(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size traces in -short mode")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tr, err := w.Trace()
			if err != nil {
				t.Fatal(err)
			}
			// Default sizes target roughly 100-300k dynamic instructions
			// (fig1 is smaller by design).
			lo, hi := 60_000, 600_000
			if w.Name == "fig1" {
				lo = 30_000
			}
			if w.Name == "hst" {
				lo = 100_000
			}
			if tr.Len() < lo || tr.Len() > hi {
				t.Errorf("%s default trace length %d outside [%d, %d]", w.Name, tr.Len(), lo, hi)
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	w, _ := ByName("per")
	t1, err := w.TraceRounds(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := w.TraceRounds(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Len() != t2.Len() {
		t.Fatalf("lengths differ: %d vs %d", t1.Len(), t2.Len())
	}
	for i := range t1.Events {
		if t1.Events[i] != t2.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	// Different seed changes the input-dependent path.
	t3, err := w.TraceRounds(300, 8)
	if err != nil {
		t.Fatal(err)
	}
	if t3.Len() == t1.Len() {
		same := true
		for i := range t1.Events {
			if t1.Events[i] != t3.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestSeedChangesInputs(t *testing.T) {
	for _, w := range All() {
		in1 := w.Input(10, 1)
		in2 := w.Input(10, 2)
		if in1[0] != 10 || in2[0] != 10 {
			t.Errorf("%s: rounds word wrong", w.Name)
		}
		if len(in1) > 1 {
			same := len(in1) == len(in2)
			if same {
				for i := range in1 {
					if in1[i] != in2[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Errorf("%s: seeds do not change input", w.Name)
			}
		}
	}
}

func TestMgridInnerLoopHasNoImmediates(t *testing.T) {
	// The defining property of the mgrid workload (paper §4.2: mgrid has
	// almost no immediate inputs): the steady-state instruction mix is
	// dominated by immediate-free instructions.
	w, _ := ByName("mgr")
	tr, err := w.TraceRounds(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	imm, total := 0, 0
	// Skip the setup/fill prefix: count only the second half.
	for i := tr.Len() / 2; i < tr.Len(); i++ {
		e := &tr.Events[i]
		total++
		if e.HasImm {
			imm++
		}
		for s := uint8(0); s < e.NSrc; s++ {
			if e.SrcReg[s] == 0 {
				imm++
				break
			}
		}
	}
	if frac := float64(imm) / float64(total); frac > 0.05 {
		t.Errorf("mgr steady state: %.1f%% instructions with immediates, want < 5%%", 100*frac)
	}
}

func TestM88FetchesFromStaticProgram(t *testing.T) {
	// m88ksim's defining property: a large fraction of loads read the
	// static guest program (D data reused every fetch).
	w, _ := ByName("m88")
	prog, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	base, ok := prog.Symbol("simprog")
	if !ok {
		t.Fatal("no simprog symbol")
	}
	tr, err := w.TraceRounds(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	fetches := 0
	for i := range tr.Events {
		e := &tr.Events[i]
		if isa.IsLoad(e.Op) && e.Addr >= base && e.Addr < base+32 {
			fetches++
		}
	}
	// 3 rounds x 128 guest steps = 384 fetches.
	if fetches != 384 {
		t.Errorf("guest fetches = %d, want 384", fetches)
	}
}

func TestFloatWorkloadsUseFloatOps(t *testing.T) {
	for _, w := range Float() {
		tr, err := w.TraceRounds(3, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		fp := 0
		for i := range tr.Events {
			switch tr.Events[i].Op {
			case isa.OpAddf, isa.OpSubf, isa.OpMulf, isa.OpDivf:
				fp++
			}
		}
		if fp == 0 {
			t.Errorf("%s: no float arithmetic executed", w.Name)
		}
	}
}

func TestComChecksumMatchesReference(t *testing.T) {
	// Cross-check the compress workload against a Go reimplementation of
	// its algorithm — guards against assembler/VM miscompiles.
	w, _ := ByName("com")
	const rounds = 500
	input := w.Input(rounds, 3)

	// The recency table starts zeroed, exactly like the VM's fresh memory
	// (so byte 0 "hits" even on its first appearance). Each input word
	// carries four bytes, LSB first.
	var table [256]uint32
	var want uint32
	for _, v := range input[1:] {
		for k := 0; k < 4; k++ {
			b := (v >> (8 * k)) & 255
			if table[b] == b {
				want++
			} else {
				table[b] = b
				want += b
			}
		}
	}

	prog, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog)
	m.SetInput(vm.SliceInput(input))
	var got []uint32
	m.SetOutput(func(v uint32) { got = append(got, v) })
	if err := m.Run(MaxTraceLen, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want {
		t.Errorf("checksum = %v, want [%d]", got, want)
	}
}

func TestTraceRoundsRejectsBadGenerator(t *testing.T) {
	w := &Workload{
		Name:   "bad",
		Source: "main: halt",
		Input:  func(rounds int, _ uint64) []uint32 { return []uint32{99} },
	}
	if _, err := w.TraceRounds(5, 1); err == nil {
		t.Error("generator not leading with rounds accepted")
	}
}
