package workloads

// Floating-point workloads (float32 bit patterns in the integer register
// file). Same register conventions as the integer set.

func init() {
	register(&Workload{
		Name:     "app",
		FullName: "110.applu-like",
		Float:    true,
		Rounds:   70,
		Source:   appSrc,
		Input:    roundsInput,
	})

	register(&Workload{
		Name:     "fpp",
		FullName: "145.fpppp-like",
		Float:    true,
		Rounds:   4500,
		Source:   fppSrc,
		Input: func(rounds int, seed uint64) []uint32 {
			r := newRNG(seed)
			data := make([]uint32, 2*rounds)
			for i := range data {
				data[i] = r.next()
			}
			return prefixInput(rounds, data)
		},
	})

	register(&Workload{
		Name:     "mgr",
		FullName: "107.mgrid-like",
		Float:    true,
		Rounds:   45,
		Source:   mgrSrc,
		Input: func(rounds int, seed uint64) []uint32 {
			r := newRNG(seed)
			data := make([]uint32, 256)
			for i := range data {
				data[i] = r.next()
			}
			return prefixInput(rounds, data)
		},
	})

	register(&Workload{
		Name:     "swm",
		FullName: "102.swim-like",
		Float:    true,
		Rounds:   65,
		Source:   swmSrc,
		Input: func(rounds int, seed uint64) []uint32 {
			r := newRNG(seed)
			data := make([]uint32, 144)
			for i := range data {
				data[i] = r.next()
			}
			return prefixInput(rounds, data)
		},
	})
}

// appSrc: Jacobi sweeps over a diagonally dominant 16x16 system — the dense
// multiply-subtract-divide inner loops of applu. The right-hand side is
// perturbed every round so the iteration never reaches a fixed point.
const appSrc = `
	.data
amat:	.space 1024		# 16x16 floats
bvec:	.space 64
xvec:	.space 64
	.text
main:	in $s7
	li $s6, 0
	la $s0, amat
	la $s1, bvec
	la $s2, xvec
	# a[k] = float(k%7 + 1)
	li $t0, 0
ainit:	li $t1, 7
	remu $t2, $t0, $t1
	addiu $t2, $t2, 1
	cvtsw $t3, $t2
	sll $t4, $t0, 2
	addu $t4, $t4, $s0
	sw $t3, 0($t4)
	addiu $t0, $t0, 1
	slti $t5, $t0, 256
	bne $t5, $zero, ainit
	# a[i][i] += 16;  b[i] = float(i+1);  x[i] = 1.0
	li $t0, 0
dinit:	sll $t1, $t0, 4
	add $t1, $t1, $t0	# 17*i
	sll $t1, $t1, 2
	addu $t1, $t1, $s0
	lw $t2, 0($t1)
	li $t3, 16
	cvtsw $t3, $t3
	addf $t2, $t2, $t3
	sw $t2, 0($t1)
	addiu $t4, $t0, 1
	cvtsw $t4, $t4
	sll $t5, $t0, 2
	addu $t6, $t5, $s1
	sw $t4, 0($t6)
	li $t7, 1
	cvtsw $t7, $t7
	addu $t6, $t5, $s2
	sw $t7, 0($t6)
	addiu $t0, $t0, 1
	slti $t8, $t0, 16
	bne $t8, $zero, dinit
round:	li $t0, 0		# i
iloop:	sll $t1, $t0, 2
	addu $t2, $t1, $s1
	lw $v0, 0($t2)		# s = b[i]
	sll $t3, $t0, 6
	addu $t3, $t3, $s0	# row base (i*16 words)
	li $t4, 0		# j
jloop:	beq $t4, $t0, jskip
	sll $t5, $t4, 2
	addu $t6, $t5, $t3
	lw $t7, 0($t6)		# a[i][j]
	addu $t8, $t5, $s2
	lw $v1, 0($t8)		# x[j]
	mulf $a0, $t7, $v1
	subf $v0, $v0, $a0
jskip:	addiu $t4, $t4, 1
	slti $t5, $t4, 16
	bne $t5, $zero, jloop
	sll $t5, $t0, 4
	add $t5, $t5, $t0
	sll $t5, $t5, 2
	addu $t5, $t5, $s0
	lw $t6, 0($t5)		# a[i][i]
	divf $v0, $v0, $t6
	sll $t7, $t0, 2
	addu $t7, $t7, $s2
	sw $v0, 0($t7)		# x[i]
	addiu $t0, $t0, 1
	slti $t8, $t0, 16
	bne $t8, $zero, iloop
	# perturb b[round%16] += 1.0
	andi $t0, $s6, 15
	sll $t0, $t0, 2
	addu $t0, $t0, $s1
	lw $t1, 0($t0)
	li $t2, 1
	cvtsw $t2, $t2
	addf $t1, $t1, $t2
	sw $t1, 0($t0)
	addiu $s6, $s6, 1
	slt $t0, $s6, $s7
	bne $t0, $zero, round
	lw $t0, 0($s2)
	out $t0
	halt
`

// fppSrc: long straight-line float basic blocks (polynomial products over
// two fresh inputs per round), the large-basic-block signature of fpppp.
const fppSrc = `
	.data
coef:	.word 0x3F800000, 0x3F000000, 0x3E800000, 0x40000000, 0x3FC00000
	.text
main:	in $s7
	li $s6, 0
	la $t0, coef
	lw $s0, 0($t0)		# 1.0
	lw $s1, 4($t0)		# 0.5
	lw $s2, 8($t0)		# 0.25
	lw $s3, 12($t0)		# 2.0
	lw $s4, 16($t0)		# 1.5
	li $t1, 0
	cvtsw $a3, $t1		# acc = 0.0
round:	in $t1
	andi $t1, $t1, 63
	cvtsw $t2, $t1		# x
	in $t3
	andi $t3, $t3, 63
	cvtsw $t4, $t3		# y
	mulf $t5, $t2, $s0	# p(x), Horner
	addf $t5, $t5, $s1
	mulf $t5, $t5, $t2
	addf $t5, $t5, $s2
	mulf $t5, $t5, $t2
	addf $t5, $t5, $s3
	mulf $t6, $t4, $s0	# p(y)
	addf $t6, $t6, $s1
	mulf $t6, $t6, $t4
	addf $t6, $t6, $s2
	mulf $t6, $t6, $t4
	addf $t6, $t6, $s3
	mulf $t7, $t5, $t6
	addf $t8, $t5, $t6
	subf $v0, $t5, $t6
	mulf $v0, $v0, $v0
	addf $t7, $t7, $v0
	mulf $t8, $t8, $s4
	addf $t7, $t7, $t8
	mulf $a0, $t2, $t4
	addf $a0, $a0, $s2
	mulf $a1, $a0, $a0
	addf $a1, $a1, $t7
	mulf $a2, $a1, $s1
	addf $a2, $a2, $s0
	divf $a2, $a2, $s3
	mulf $v1, $a2, $s2
	addf $v1, $v1, $a0
	subf $v1, $v1, $t5
	mulf $v1, $v1, $s1
	addf $a3, $a3, $v1	# acc +=
	addiu $s6, $s6, 1
	slt $t1, $s6, $s7
	bne $t1, $zero, round
	cvtws $t0, $a3
	out $t0
	halt
`

// mgrSrc: red-black-free 5-point smoothing over a 16x16 grid with an
// IMMEDIATE-FREE inner loop: all strides, constants and loop bounds live in
// registers loaded during setup, and every load uses offset-0 register
// addressing. This reproduces the paper's observation that mgrid has almost
// no node generation because very few instructions have immediate inputs.
// Register $fp holds integer zero so register moves avoid reading $0 (which
// the model counts as an immediate).
const mgrSrc = `
	.data
gridA:	.space 1024		# 16x16 floats
gridB:	.space 1024
	.text
main:	in $s7
	li $s6, 0
	la $s0, gridA
	la $s1, gridB
	li $s2, 4		# word stride
	li $s3, 64		# row stride (bytes)
	li $s4, 1		# integer one
	li $s5, 14		# interior extent
	li $fp, 0		# integer zero (avoids $0 reads in the loop)
	li $a2, 0x3E800000	# 0.25f
	li $a3, 0x3F000000	# 0.5f
	# fill gridA from input
	li $t0, 0
fill:	in $t1
	andi $t1, $t1, 127
	cvtsw $t2, $t1
	sll $t3, $t0, 2
	addu $t3, $t3, $s0
	sw $t2, 0($t3)
	addiu $t0, $t0, 1
	slti $t4, $t0, 256
	bne $t4, $zero, fill
	# copy A to B so borders are defined in both buffers
	li $t0, 0
copy:	sll $t1, $t0, 2
	addu $t2, $t1, $s0
	lw $t3, 0($t2)
	addu $t4, $t1, $s1
	sw $t3, 0($t4)
	addiu $t0, $t0, 1
	slti $t5, $t0, 256
	bne $t5, $zero, copy
round:	# p/q = first interior cell of src/dst (base + row + word)
	add $t8, $s0, $s3
	add $t8, $t8, $s2
	add $t9, $s1, $s3
	add $t9, $t9, $s2
	add $t0, $s5, $fp	# y countdown = 14
yloop:	add $t2, $s5, $fp	# x countdown = 14
xloop:	sub $t4, $t8, $s3
	lw $t5, 0($t4)		# up
	add $t4, $t8, $s3
	lw $t6, 0($t4)		# down
	sub $t4, $t8, $s2
	lw $t7, 0($t4)		# left
	add $t4, $t8, $s2
	lw $v0, 0($t4)		# right
	addf $t5, $t5, $t6
	addf $t5, $t5, $t7
	addf $t5, $t5, $v0
	mulf $t5, $t5, $a2	# neighbour average
	lw $v1, 0($t8)		# centre
	subf $t5, $t5, $v1
	mulf $t5, $t5, $a3	# blend halfway
	addf $t5, $t5, $v1
	sw $t5, 0($t9)
	add $t8, $t8, $s2
	add $t9, $t9, $s2
	sub $t2, $t2, $s4
	bne $t2, $fp, xloop
	add $t8, $t8, $s2	# skip border pair
	add $t8, $t8, $s2
	add $t9, $t9, $s2
	add $t9, $t9, $s2
	sub $t0, $t0, $s4
	bne $t0, $fp, yloop
	# swap src/dst without immediates
	add $v0, $s0, $s1
	sub $s0, $v0, $s0
	sub $s1, $v0, $s1
	addiu $s6, $s6, 1
	slt $t0, $s6, $s7
	bne $t0, $zero, round
	lw $t0, 0($s0)
	out $t0
	halt
`

// swmSrc: 1D-flattened shallow-water update — two coupled stencil sweeps
// per timestep, the regular dual-array pattern of swim.
const swmSrc = `
	.data
hgrid:	.space 576		# 144 floats
ugrid:	.space 576
	.text
main:	in $s7
	li $s6, 0
	la $s0, hgrid
	la $s1, ugrid
	li $a2, 0x3F666666	# 0.9f
	li $a3, 0x3D4CCCCD	# 0.05f
	li $v1, 0x3DCCCCCD	# 0.1f
	li $t0, 0
fill:	in $t1
	andi $t1, $t1, 63
	cvtsw $t2, $t1
	sll $t3, $t0, 2
	addu $t4, $t3, $s0
	sw $t2, 0($t4)
	li $t5, 0
	cvtsw $t5, $t5
	addu $t6, $t3, $s1
	sw $t5, 0($t6)
	addiu $t0, $t0, 1
	slti $t7, $t0, 144
	bne $t7, $zero, fill
round:	li $t0, 1		# velocity sweep
uloop:	sll $t1, $t0, 2
	addu $t2, $t1, $s1
	lw $t3, 0($t2)		# u[i]
	addu $t4, $t1, $s0
	lw $t5, 4($t4)		# h[i+1]
	lw $t6, -4($t4)		# h[i-1]
	subf $t7, $t5, $t6
	mulf $t7, $t7, $a3
	mulf $t3, $t3, $a2
	addf $t3, $t3, $t7
	sw $t3, 0($t2)
	addiu $t0, $t0, 1
	slti $t8, $t0, 143
	bne $t8, $zero, uloop
	li $t0, 1		# height sweep
hloop:	sll $t1, $t0, 2
	addu $t2, $t1, $s0
	lw $t3, 0($t2)		# h[i]
	addu $t4, $t1, $s1
	lw $t5, 4($t4)		# u[i+1]
	lw $t6, -4($t4)		# u[i-1]
	subf $t7, $t5, $t6
	mulf $t7, $t7, $v1
	subf $t3, $t3, $t7
	sw $t3, 0($t2)
	addiu $t0, $t0, 1
	slti $t8, $t0, 143
	bne $t8, $zero, hloop
	addiu $s6, $s6, 1
	slt $t0, $s6, $s7
	bne $t0, $zero, round
	lw $t0, 4($s0)
	out $t0
	halt
`
