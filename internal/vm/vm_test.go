package vm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/trace"
)

func run(t *testing.T, src string, input []uint32) (*Machine, []uint32) {
	t.Helper()
	prog, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(prog)
	if input != nil {
		m.SetInput(SliceInput(input))
	}
	var out []uint32
	m.SetOutput(func(v uint32) { out = append(out, v) })
	if err := m.Run(1_000_000, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, out
}

func TestArithmetic(t *testing.T) {
	m, _ := run(t, `
	main:	li $t0, 7
		li $t1, 3
		add $s0, $t0, $t1
		sub $s1, $t0, $t1
		mul $s2, $t0, $t1
		div $s3, $t0, $t1
		rem $s4, $t0, $t1
		and $s5, $t0, $t1
		or  $s6, $t0, $t1
		xor $s7, $t0, $t1
		halt
	`, nil)
	want := map[isa.Reg]uint32{16: 10, 17: 4, 18: 21, 19: 2, 20: 1, 21: 3, 22: 7, 23: 4}
	for r, w := range want {
		if got := m.Reg(r); got != w {
			t.Errorf("$%d = %d, want %d", r, got, w)
		}
	}
}

func TestSignedOps(t *testing.T) {
	m, _ := run(t, `
	main:	li $t0, -8
		li $t1, 3
		div $s0, $t0, $t1
		rem $s1, $t0, $t1
		slt $s2, $t0, $t1
		sltu $s3, $t0, $t1
		sra $s4, $t0, 1
		srl $s5, $t0, 1
		halt
	`, nil)
	if got := int32(m.Reg(16)); got != -2 {
		t.Errorf("div -8/3 = %d, want -2", got)
	}
	if got := int32(m.Reg(17)); got != -2 {
		t.Errorf("rem -8%%3 = %d, want -2", got)
	}
	if m.Reg(18) != 1 {
		t.Error("slt -8<3 should be 1")
	}
	if m.Reg(19) != 0 {
		t.Error("sltu 0xfffffff8<3 should be 0")
	}
	if got := int32(m.Reg(20)); got != -4 {
		t.Errorf("sra -8>>1 = %d, want -4", got)
	}
	if got := m.Reg(21); got != 0x7ffffffc {
		t.Errorf("srl = %#x, want 0x7ffffffc", got)
	}
}

func TestDivByZero(t *testing.T) {
	m, _ := run(t, `
	main:	li $t0, 9
		li $t1, 0
		div $s0, $t0, $t1
		divu $s1, $t0, $t1
		rem $s2, $t0, $t1
		remu $s3, $t0, $t1
		halt
	`, nil)
	if m.Reg(16) != 0 || m.Reg(17) != 0 {
		t.Error("division by zero should yield 0")
	}
	if m.Reg(18) != 9 || m.Reg(19) != 9 {
		t.Error("remainder by zero should yield the numerator")
	}
}

func TestShiftMasking(t *testing.T) {
	m, _ := run(t, `
	main:	li $t0, 1
		li $t1, 33
		sllv $s0, $t0, $t1
		halt
	`, nil)
	if m.Reg(16) != 2 {
		t.Errorf("shift counts mask to 5 bits: got %d, want 2", m.Reg(16))
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m, _ := run(t, `
	main:	li $zero, 99
		addi $zero, $zero, 5
		add $t0, $zero, $zero
		halt
	`, nil)
	if m.Reg(0) != 0 {
		t.Errorf("$0 = %d, want 0", m.Reg(0))
	}
	if m.Reg(8) != 0 {
		t.Errorf("$t0 = %d, want 0", m.Reg(8))
	}
}

func TestMemoryOps(t *testing.T) {
	m, _ := run(t, `
		.data
	arr:	.word 10, 20, 30
	bytes:	.byte 0xff, 0x7f
		.text
	main:	lw $t0, arr($zero)
		lw $t1, arr+4($zero)
		la $t2, arr
		lw $t3, 8($t2)
		lb $t4, bytes($zero)
		lbu $t5, bytes($zero)
		lb $t6, bytes+1($zero)
		li $t7, 77
		sw $t7, arr($zero)
		lw $s0, arr($zero)
		sb $t7, bytes($zero)
		lbu $s1, bytes($zero)
		halt
	`, nil)
	if m.Reg(8) != 10 || m.Reg(9) != 20 || m.Reg(11) != 30 {
		t.Errorf("loads: %d %d %d", m.Reg(8), m.Reg(9), m.Reg(11))
	}
	if int32(m.Reg(12)) != -1 {
		t.Errorf("lb sign extension: %d", int32(m.Reg(12)))
	}
	if m.Reg(13) != 0xff {
		t.Errorf("lbu zero extension: %#x", m.Reg(13))
	}
	if m.Reg(14) != 0x7f {
		t.Errorf("lb positive: %#x", m.Reg(14))
	}
	if m.Reg(16) != 77 {
		t.Errorf("store/load roundtrip: %d", m.Reg(16))
	}
	if m.Reg(17) != 77 {
		t.Errorf("byte store/load roundtrip: %d", m.Reg(17))
	}
}

func TestBranchesAndLoop(t *testing.T) {
	m, _ := run(t, `
	main:	li $t0, 0
		li $t1, 0
	loop:	add $t1, $t1, $t0
		addiu $t0, $t0, 1
		slti $t2, $t0, 10
		bne $t2, $zero, loop
		halt
	`, nil)
	if m.Reg(9) != 45 {
		t.Errorf("sum 0..9 = %d, want 45", m.Reg(9))
	}
}

func TestAllBranchKinds(t *testing.T) {
	m, _ := run(t, `
	main:	li $t0, -1
		li $s0, 0
		blez $t0, a
		j fail
	a:	bltz $t0, b
		j fail
	b:	li $t0, 1
		bgtz $t0, c
		j fail
	c:	bgez $t0, d
		j fail
	d:	li $t1, 1
		beq $t0, $t1, e
		j fail
	e:	li $t1, 2
		bne $t0, $t1, ok
	fail:	li $s0, 0
		halt
	ok:	li $s0, 1
		halt
	`, nil)
	if m.Reg(16) != 1 {
		t.Error("branch kinds misbehaved")
	}
}

func TestCallReturn(t *testing.T) {
	m, _ := run(t, `
	main:	li $a0, 5
		jal double
		move $s0, $v0
		li $a0, 21
		jal double
		move $s1, $v0
		halt
	double:	add $v0, $a0, $a0
		jr $ra
	`, nil)
	if m.Reg(16) != 10 || m.Reg(17) != 42 {
		t.Errorf("calls: %d %d", m.Reg(16), m.Reg(17))
	}
}

func TestJalr(t *testing.T) {
	m, _ := run(t, `
	main:	la $t0, f
		jalr $ra, $t0
		halt
	f:	li $s0, 123
		jr $ra
	`, nil)
	if m.Reg(16) != 123 {
		t.Errorf("jalr: $s0 = %d", m.Reg(16))
	}
}

func TestInputOutput(t *testing.T) {
	m, out := run(t, `
	main:	in $t0
		in $t1
		add $t2, $t0, $t1
		out $t2
		in $t3
		out $t3
		halt
	`, []uint32{4, 5})
	if len(out) != 2 || out[0] != 9 {
		t.Errorf("out = %v, want [9 0]", out)
	}
	if out[1] != 0 {
		t.Error("exhausted input should read 0")
	}
	if m.Reg(11) != 0 {
		t.Error("exhausted input register should be 0")
	}
}

func TestFloatOps(t *testing.T) {
	m, _ := run(t, `
	main:	li $t0, 3
		li $t1, 4
		cvtsw $t2, $t0
		cvtsw $t3, $t1
		addf $s0, $t2, $t3
		mulf $s1, $t2, $t3
		divf $s2, $t3, $t2
		subf $s3, $t2, $t3
		negf $s4, $t2
		absf $s5, $s4
		cltf $s6, $t2, $t3
		ceqf $s7, $t2, $t2
		cvtws $v0, $s1
		halt
	`, nil)
	f := func(r isa.Reg) float32 { return math.Float32frombits(m.Reg(r)) }
	if f(16) != 7 || f(17) != 12 || f(19) != -1 {
		t.Errorf("float arith: %v %v %v", f(16), f(17), f(19))
	}
	if got := f(18); got < 1.3 || got > 1.34 {
		t.Errorf("divf 4/3 = %v", got)
	}
	if f(20) != -3 || f(21) != 3 {
		t.Errorf("negf/absf: %v %v", f(20), f(21))
	}
	if m.Reg(22) != 1 || m.Reg(23) != 1 {
		t.Errorf("float compares: %d %d", m.Reg(22), m.Reg(23))
	}
	if m.Reg(2) != 12 {
		t.Errorf("cvtws: %d", m.Reg(2))
	}
}

func TestStepLimit(t *testing.T) {
	prog, _ := asm.Assemble("t", "main: j main")
	m := New(prog)
	err := m.Run(100, nil)
	if _, ok := err.(ErrLimit); !ok {
		t.Fatalf("expected ErrLimit, got %v", err)
	}
	if m.Steps() != 100 {
		t.Errorf("steps = %d, want 100", m.Steps())
	}
}

func TestTracePartialOnLimitValidates(t *testing.T) {
	prog, _ := asm.Assemble("t", `
	main:	addi $t0, $t0, 1
		j main
	`)
	tr, err := Trace(prog, nil, 64)
	if _, ok := err.(ErrLimit); !ok {
		t.Fatalf("expected ErrLimit, got %v", err)
	}
	if verr := tr.Validate(); verr != nil {
		t.Errorf("partial trace fails validation: %v", verr)
	}
}

func TestPCOutOfRange(t *testing.T) {
	prog, _ := asm.Assemble("t", "main: j 99")
	m := New(prog)
	if err := m.Run(10, nil); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestStackInitialised(t *testing.T) {
	m, _ := run(t, `
	main:	li $t0, 42
		sw $t0, -4($sp)
		lw $t1, -4($sp)
		addiu $sp, $sp, -8
		sw $t0, 0($sp)
		halt
	`, nil)
	if m.Reg(9) != 42 {
		t.Error("stack store/load failed")
	}
	if m.Reg(29) != StackTop-8 {
		t.Errorf("$sp = %#x", m.Reg(29))
	}
}

func TestTraceEmission(t *testing.T) {
	prog, err := asm.Assemble("t", `
		.data
	v:	.word 5
		.text
	main:	lw $t0, v($zero)
		addi $t1, $t0, 1
		sw $t1, v($zero)
		beq $t1, $zero, main
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Trace(prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("trace has %d events, want 5", tr.Len())
	}
	lw := tr.Events[0]
	if lw.Op != isa.OpLw || lw.MemVal != 5 || lw.DstVal != 5 || lw.DstReg != 8 {
		t.Errorf("lw event: %v", &lw)
	}
	if lw.Addr != asm.DefaultDataBase {
		t.Errorf("lw addr = %#x", lw.Addr)
	}
	addi := tr.Events[1]
	if addi.NSrc != 1 || addi.SrcReg[0] != 8 || addi.SrcVal[0] != 5 || addi.DstVal != 6 {
		t.Errorf("addi event: %v", &addi)
	}
	sw := tr.Events[2]
	if sw.Op != isa.OpSw || sw.MemVal != 6 || sw.DstReg != isa.NoReg {
		t.Errorf("sw event: %v", &sw)
	}
	beq := tr.Events[3]
	if beq.Taken {
		t.Error("beq should not be taken")
	}
	if tr.StaticCount[0] != 1 {
		t.Error("static count wrong")
	}
}

func TestTraceStepLimitReturnsPartial(t *testing.T) {
	prog, _ := asm.Assemble("t", "main: j main")
	tr, err := Trace(prog, nil, 50)
	if _, ok := err.(ErrLimit); !ok {
		t.Fatalf("expected partial trace with ErrLimit, got err=%v", err)
	}
	if tr == nil || tr.Len() != 50 {
		t.Fatalf("partial trace missing or wrong length")
	}
}

func TestMemorySparse(t *testing.T) {
	m := NewMemory()
	if m.ReadWord(0x12345678) != 0 {
		t.Error("unwritten memory should read 0")
	}
	m.WriteWord(0x12345678, 0xdeadbeef)
	if m.ReadWord(0x12345678) != 0xdeadbeef {
		t.Error("roundtrip failed")
	}
	if m.LoadByte(0x12345678) != 0xef || m.LoadByte(0x1234567b) != 0xde {
		t.Error("little-endian layout violated")
	}
	if m.PageCount() != 1 {
		t.Errorf("pages = %d, want 1", m.PageCount())
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2) // straddles first/second page
	m.WriteWord(addr, 0xa1b2c3d4)
	if got := m.ReadWord(addr); got != 0xa1b2c3d4 {
		t.Errorf("straddling word = %#x", got)
	}
	if m.PageCount() != 2 {
		t.Errorf("pages = %d, want 2", m.PageCount())
	}
}

func TestMemoryWordRoundTripProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr, val uint32) bool {
		m.WriteWord(addr, val)
		return m.ReadWord(addr) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunDeterministic(t *testing.T) {
	// Two runs of the same program+input must produce identical traces.
	src := `
	main:	li $t0, 0
		li $t1, 0
	loop:	in $t2
		add $t1, $t1, $t2
		addiu $t0, $t0, 1
		slti $t3, $t0, 50
		bne $t3, $zero, loop
		out $t1
		halt
	`
	prog, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]uint32, 50)
	for i := range input {
		input[i] = uint32(i * 7)
	}
	t1, err := Trace(prog, SliceInput(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Trace(prog, SliceInput(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Len() != t2.Len() {
		t.Fatalf("lengths differ: %d vs %d", t1.Len(), t2.Len())
	}
	for i := range t1.Events {
		if t1.Events[i] != t2.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, &t1.Events[i], &t2.Events[i])
		}
	}
}

func TestEventReuseRequiresCopy(t *testing.T) {
	prog, _ := asm.Assemble("t", "main: li $t0, 1\nli $t1, 2\nhalt")
	m := New(prog)
	var ptrs []*trace.Event
	err := m.Run(0, func(e *trace.Event) { ptrs = append(ptrs, e) })
	if err != nil {
		t.Fatal(err)
	}
	// The emit callback receives the same Event pointer every time; this is
	// documented behaviour that callers must copy.
	if ptrs[0] != ptrs[1] {
		t.Error("expected the emitter to reuse one Event buffer")
	}
}
