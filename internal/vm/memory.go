// Package vm executes programs for the MIPS-like ISA and emits the dynamic
// instruction stream the predictability model consumes. It is the
// reproduction's substitute for SimpleScalar's trace-driven functional
// simulator.
package vm

import "fmt"

const pageShift = 12
const pageSize = 1 << pageShift

// Memory is a sparse, byte-addressable, little-endian memory. Unwritten
// bytes read as zero. Pages are allocated on first touch.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint32, b byte) {
	m.page(addr, true)[addr&(pageSize-1)] = b
}

// ReadWord returns the little-endian 32-bit word at addr. Word accesses may
// straddle a page boundary (the ISA does not require alignment).
func (m *Memory) ReadWord(addr uint32) uint32 {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	}
	return uint32(m.LoadByte(addr)) |
		uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 |
		uint32(m.LoadByte(addr+3))<<24
}

// WriteWord stores v at addr in little-endian order.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 {
		p := m.page(addr, true)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
	m.StoreByte(addr+2, byte(v>>16))
	m.StoreByte(addr+3, byte(v>>24))
}

// LoadBytes copies data into memory starting at base.
func (m *Memory) LoadBytes(base uint32, data []byte) {
	for i, b := range data {
		m.StoreByte(base+uint32(i), b)
	}
}

// PageCount returns the number of allocated pages (for tests and stats).
func (m *Memory) PageCount() int { return len(m.pages) }

// String summarises the memory footprint.
func (m *Memory) String() string {
	return fmt.Sprintf("vm.Memory{%d pages, %d KiB touched}", len(m.pages), len(m.pages)*pageSize/1024)
}
