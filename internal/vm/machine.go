package vm

import (
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/trace"
)

// StackTop is the initial stack pointer. The stack grows down and is far
// from the data segment so the two never collide in practice.
const StackTop uint32 = 0x7fff0000

// InputSource supplies program input words for the `in` instruction — the
// model's D-node values. Exhausted sources return ok=false and the machine
// delivers zero.
type InputSource func() (v uint32, ok bool)

// SliceInput returns an InputSource that replays vals and then reports
// exhaustion.
func SliceInput(vals []uint32) InputSource {
	i := 0
	return func() (uint32, bool) {
		if i >= len(vals) {
			return 0, false
		}
		v := vals[i]
		i++
		return v, true
	}
}

// Machine executes one program. The zero value is not usable; call New.
type Machine struct {
	prog *asm.Program
	mem  *Memory
	regs [isa.NumRegs]uint32
	pc   int

	input  InputSource
	output func(uint32)

	steps  uint64
	halted bool
}

// New prepares a machine: loads the data segment, points $sp at the stack
// top and $gp at the data base, and sets the PC to the program entry.
func New(prog *asm.Program) *Machine {
	m := &Machine{prog: prog, mem: NewMemory(), pc: prog.Entry}
	m.mem.LoadBytes(prog.DataBase, prog.Data)
	m.regs[29] = StackTop      // $sp
	m.regs[28] = prog.DataBase // $gp
	return m
}

// SetInput installs the program-input source.
func (m *Machine) SetInput(in InputSource) { m.input = in }

// SetOutput installs a sink for `out` values; nil discards them.
func (m *Machine) SetOutput(out func(uint32)) { m.output = out }

// Reg returns the current value of register r.
func (m *Machine) Reg(r isa.Reg) uint32 { return m.regs[r] }

// Mem returns the machine's memory (for tests and inspection).
func (m *Machine) Mem() *Memory { return m.mem }

// PC returns the current program counter (instruction index).
func (m *Machine) PC() int { return m.pc }

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() uint64 { return m.steps }

// Halted reports whether the program has executed halt.
func (m *Machine) Halted() bool { return m.halted }

// ErrLimit is returned by Run when the step limit is reached before halt.
type ErrLimit struct{ Steps uint64 }

func (e ErrLimit) Error() string {
	return fmt.Sprintf("vm: step limit reached after %d instructions", e.Steps)
}

// Run executes until halt or until limit instructions have retired
// (limit 0 means unlimited). emit, if non-nil, receives every dynamic
// instruction; the Event is reused between calls and must be copied if
// retained.
func (m *Machine) Run(limit uint64, emit func(*trace.Event)) error {
	var ev trace.Event
	for !m.halted {
		if limit > 0 && m.steps >= limit {
			return ErrLimit{Steps: m.steps}
		}
		if m.pc < 0 || m.pc >= len(m.prog.Instrs) {
			return fmt.Errorf("vm: pc %d out of range (program %q has %d instructions)", m.pc, m.prog.Name, len(m.prog.Instrs))
		}
		ins := m.prog.Instrs[m.pc]
		if err := m.step(ins, &ev); err != nil {
			return fmt.Errorf("vm: pc %d (%s): %w", ev.PC, ins, err)
		}
		m.steps++
		if emit != nil {
			emit(&ev)
		}
	}
	return nil
}

// step executes one instruction, filling ev with its dynamic record.
func (m *Machine) step(ins isa.Instruction, ev *trace.Event) error {
	*ev = trace.Event{PC: uint32(m.pc), Op: ins.Op, DstReg: isa.NoReg, HasImm: isa.HasImmediateOperand(ins)}
	srcs, n := isa.SourceRegs(ins)
	ev.NSrc = uint8(n)
	for i := 0; i < n; i++ {
		ev.SrcReg[i] = uint8(srcs[i])
		ev.SrcVal[i] = m.regs[srcs[i]]
	}
	rs := m.regs[ins.Rs]
	rt := m.regs[ins.Rt]
	next := m.pc + 1

	setRd := func(v uint32) {
		ev.DstReg = uint8(ins.Rd)
		ev.DstVal = v
		if ins.Rd != isa.Zero {
			m.regs[ins.Rd] = v
		}
	}

	switch ins.Op {
	case isa.OpAdd, isa.OpAddu:
		setRd(rs + rt)
	case isa.OpSub, isa.OpSubu:
		setRd(rs - rt)
	case isa.OpAnd:
		setRd(rs & rt)
	case isa.OpOr:
		setRd(rs | rt)
	case isa.OpXor:
		setRd(rs ^ rt)
	case isa.OpNor:
		setRd(^(rs | rt))
	case isa.OpSlt:
		setRd(boolWord(int32(rs) < int32(rt)))
	case isa.OpSltu:
		setRd(boolWord(rs < rt))
	case isa.OpSllv:
		setRd(rs << (rt & 31))
	case isa.OpSrlv:
		setRd(rs >> (rt & 31))
	case isa.OpSrav:
		setRd(uint32(int32(rs) >> (rt & 31)))
	case isa.OpMul:
		setRd(rs * rt)
	case isa.OpDiv:
		if rt == 0 {
			setRd(0)
		} else {
			setRd(uint32(int32(rs) / int32(rt)))
		}
	case isa.OpDivu:
		if rt == 0 {
			setRd(0)
		} else {
			setRd(rs / rt)
		}
	case isa.OpRem:
		if rt == 0 {
			setRd(rs)
		} else {
			setRd(uint32(int32(rs) % int32(rt)))
		}
	case isa.OpRemu:
		if rt == 0 {
			setRd(rs)
		} else {
			setRd(rs % rt)
		}

	case isa.OpAddi, isa.OpAddiu:
		setRd(rs + uint32(ins.Imm))
	case isa.OpAndi:
		setRd(rs & uint32(ins.Imm))
	case isa.OpOri:
		setRd(rs | uint32(ins.Imm))
	case isa.OpXori:
		setRd(rs ^ uint32(ins.Imm))
	case isa.OpSlti:
		setRd(boolWord(int32(rs) < ins.Imm))
	case isa.OpSltiu:
		setRd(boolWord(rs < uint32(ins.Imm)))
	case isa.OpSll:
		setRd(rs << (uint32(ins.Imm) & 31))
	case isa.OpSrl:
		setRd(rs >> (uint32(ins.Imm) & 31))
	case isa.OpSra:
		setRd(uint32(int32(rs) >> (uint32(ins.Imm) & 31)))

	case isa.OpLui, isa.OpLi, isa.OpLa:
		setRd(uint32(ins.Imm))

	case isa.OpAddf:
		setRd(f2w(w2f(rs) + w2f(rt)))
	case isa.OpSubf:
		setRd(f2w(w2f(rs) - w2f(rt)))
	case isa.OpMulf:
		setRd(f2w(w2f(rs) * w2f(rt)))
	case isa.OpDivf:
		setRd(f2w(w2f(rs) / w2f(rt)))
	case isa.OpCltf:
		setRd(boolWord(w2f(rs) < w2f(rt)))
	case isa.OpClef:
		setRd(boolWord(w2f(rs) <= w2f(rt)))
	case isa.OpCeqf:
		setRd(boolWord(w2f(rs) == w2f(rt)))
	case isa.OpAbsf:
		setRd(f2w(float32(math.Abs(float64(w2f(rs))))))
	case isa.OpNegf:
		setRd(f2w(-w2f(rs)))
	case isa.OpCvtsw:
		setRd(f2w(float32(int32(rs))))
	case isa.OpCvtws:
		setRd(uint32(int32(w2f(rs))))

	case isa.OpLw:
		addr := rs + uint32(ins.Imm)
		v := m.mem.ReadWord(addr)
		ev.Addr, ev.MemVal = addr, v
		setRd(v)
	case isa.OpLb:
		addr := rs + uint32(ins.Imm)
		v := uint32(int32(int8(m.mem.LoadByte(addr))))
		ev.Addr, ev.MemVal = addr, v
		setRd(v)
	case isa.OpLbu:
		addr := rs + uint32(ins.Imm)
		v := uint32(m.mem.LoadByte(addr))
		ev.Addr, ev.MemVal = addr, v
		setRd(v)
	case isa.OpSw:
		addr := rs + uint32(ins.Imm)
		m.mem.WriteWord(addr, rt)
		ev.Addr, ev.MemVal = addr, rt
	case isa.OpSb:
		addr := rs + uint32(ins.Imm)
		m.mem.StoreByte(addr, byte(rt))
		ev.Addr, ev.MemVal = addr, rt&0xff

	case isa.OpBeq:
		if rs == rt {
			next = int(ins.Imm)
			ev.Taken = true
		}
	case isa.OpBne:
		if rs != rt {
			next = int(ins.Imm)
			ev.Taken = true
		}
	case isa.OpBlez:
		if int32(rs) <= 0 {
			next = int(ins.Imm)
			ev.Taken = true
		}
	case isa.OpBgtz:
		if int32(rs) > 0 {
			next = int(ins.Imm)
			ev.Taken = true
		}
	case isa.OpBltz:
		if int32(rs) < 0 {
			next = int(ins.Imm)
			ev.Taken = true
		}
	case isa.OpBgez:
		if int32(rs) >= 0 {
			next = int(ins.Imm)
			ev.Taken = true
		}

	case isa.OpJ:
		next = int(ins.Imm)
	case isa.OpJal:
		setRd(uint32(m.pc + 1))
		next = int(ins.Imm)
	case isa.OpJr:
		next = int(rs)
	case isa.OpJalr:
		setRd(uint32(m.pc + 1))
		next = int(rs)

	case isa.OpIn:
		var v uint32
		if m.input != nil {
			v, _ = m.input()
		}
		ev.MemVal = v
		setRd(v)
	case isa.OpOut:
		if m.output != nil {
			m.output(rs)
		}
	case isa.OpHalt:
		m.halted = true
	case isa.OpNop:
		// nothing
	default:
		return fmt.Errorf("unimplemented opcode %s", ins.Op)
	}

	m.pc = next
	return nil
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func w2f(w uint32) float32 { return math.Float32frombits(w) }
func f2w(f float32) uint32 { return math.Float32bits(f) }

// Trace assembles nothing new: it runs prog to completion (or limit) on a
// fresh machine and returns the full in-memory trace. It is the convenience
// path used by tests, examples and the figure harness.
//
// If the step limit is hit before halt, Trace returns the partial trace of
// everything executed so far alongside an ErrLimit — the prefix is
// internally consistent (it passes Validate) and usable as-is; callers that
// consider a limit hit routine can test for ErrLimit and keep the trace.
func Trace(prog *asm.Program, input InputSource, limit uint64) (*trace.Trace, error) {
	m := New(prog)
	m.SetInput(input)
	t := trace.New(prog.Name, len(prog.Instrs))
	err := m.Run(limit, func(e *trace.Event) { t.Append(*e) })
	if err != nil {
		if _, isLimit := err.(ErrLimit); !isLimit {
			return nil, err
		}
		if verr := t.Validate(); verr != nil {
			return nil, verr
		}
		return t, err
	}
	return t, nil
}
