package analysis

import (
	"math"
	"testing"

	"repro/internal/dpg"
	"repro/internal/predictor"
	"repro/internal/workloads"
)

// result caches one model run for the test suite.
var testResults = map[string]*dpg.Result{}

func resultFor(t *testing.T, name string, kind predictor.Kind) *dpg.Result {
	t.Helper()
	key := name + "/" + kind.String()
	if r, ok := testResults[key]; ok {
		return r
	}
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	tr, err := w.TraceRounds(w.Rounds/4+2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dpg.Run(tr, kind)
	if err != nil {
		t.Fatal(err)
	}
	testResults[key] = r
	return r
}

func TestTable1(t *testing.T) {
	r := resultFor(t, "gcc", predictor.KindLast)
	rows := Table1([]*dpg.Result{r})
	if len(rows) != 1 {
		t.Fatal("wrong row count")
	}
	row := rows[0]
	if row.Name != "gcc" {
		t.Error("name lost")
	}
	if row.Nodes == 0 || row.Arcs == 0 {
		t.Error("zero counts")
	}
	if row.EdgesPerNd < 1.0 || row.EdgesPerNd > 2.2 {
		t.Errorf("edges/node = %.2f, expected near the paper's 1.5", row.EdgesPerNd)
	}
	if row.DNodePct < 0 || row.DNodePct > 100 || row.DArcPct < 0 || row.DArcPct > 100 {
		t.Error("percentages out of range")
	}
}

func TestOverallSumsToHundred(t *testing.T) {
	for _, kind := range predictor.Kinds {
		r := resultFor(t, "com", kind)
		row := Overall(r)
		sum := row.NodeGen + row.NodeProp + row.NodeTerm +
			row.ArcGen + row.ArcProp + row.ArcTerm + row.UnpredPct
		if math.Abs(sum-100) > 1e-9 {
			t.Errorf("%s: overall row sums to %.6f", kind, sum)
		}
		// Paper: the sum of classified segments is less than 100%.
		if row.UnpredPct <= 0 {
			t.Errorf("%s: no unpredictability remainder", kind)
		}
	}
}

func TestGenerationMatchesResult(t *testing.T) {
	r := resultFor(t, "gcc", predictor.KindStride)
	g := Generation(r)
	total := g.ArcWl + g.ArcRd + g.ArcR + g.Arc1
	if math.Abs(total-r.Pct(r.ArcTotal(dpg.ArcNP))) > 1e-9 {
		t.Error("arc generation segments do not sum to the arc generation total")
	}
	nodes := g.NodeII + g.NodeNN + g.NodeIN
	if math.Abs(nodes-r.Pct(r.NodeGen())) > 1e-9 {
		t.Error("node generation segments do not sum")
	}
}

func TestPropagationTerminationMatch(t *testing.T) {
	r := resultFor(t, "gcc", predictor.KindContext)
	p := Propagation(r)
	if math.Abs((p.Arc1+p.ArcR+p.ArcWl+p.ArcRd)-r.Pct(r.ArcTotal(dpg.ArcPP))) > 1e-9 {
		t.Error("propagation arc segments do not sum")
	}
	if math.Abs((p.NodePP+p.NodePI+p.NodePN)-r.Pct(r.NodeProp())) > 1e-9 {
		t.Error("propagation node segments do not sum")
	}
	x := Termination(r)
	if math.Abs((x.Arc1+x.ArcR+x.ArcWl+x.ArcRd)-r.Pct(r.ArcTotal(dpg.ArcPN))) > 1e-9 {
		t.Error("termination arc segments do not sum")
	}
	if math.Abs((x.NodePN+x.NodePP+x.NodePI)-r.Pct(r.NodeTerm())) > 1e-9 {
		t.Error("termination node segments do not sum")
	}
}

func TestAverageOverall(t *testing.T) {
	a := OverallRow{NodeGen: 2, NodeProp: 10, ArcProp: 20, UnpredPct: 68, Predictor: "stride"}
	b := OverallRow{NodeGen: 4, NodeProp: 30, ArcProp: 40, UnpredPct: 26, Predictor: "stride"}
	avg := AverageOverall([]OverallRow{a, b}, "INT")
	if avg.Name != "INT" || avg.Predictor != "stride" {
		t.Error("labels wrong")
	}
	if avg.NodeGen != 3 || avg.NodeProp != 20 || avg.ArcProp != 30 {
		t.Errorf("averages wrong: %+v", avg)
	}
	empty := AverageOverall(nil, "x")
	if empty.NodeGen != 0 {
		t.Error("empty average should be zero")
	}
}

func TestPathClasses(t *testing.T) {
	r := resultFor(t, "gcc", predictor.KindContext)
	row := PathClasses(r)
	// Control-flow generation must dominate (paper's central conclusion).
	if row.Class[dpg.GenC] <= row.Class[dpg.GenD] {
		t.Errorf("C (%.2f) should exceed D (%.2f)", row.Class[dpg.GenC], row.Class[dpg.GenD])
	}
	avg := AveragePathClasses([]PathClassRow{row, row}, "INT")
	for c := 0; c < int(dpg.NumGenClass); c++ {
		if math.Abs(avg.Class[c]-row.Class[c]) > 1e-9 {
			t.Error("self-average changed values")
		}
	}
}

func TestCombos(t *testing.T) {
	r := resultFor(t, "gcc", predictor.KindContext)
	combos := Combos([]*dpg.Result{r}, 24)
	if len(combos) == 0 {
		t.Fatal("no combinations")
	}
	// Sorted descending.
	for i := 1; i < len(combos); i++ {
		if combos[i].Pct > combos[i-1].Pct {
			t.Fatal("combos not sorted")
		}
	}
	// Labels render in class order.
	if (ComboShare{Mask: 1 << dpg.GenC}).Label() != "C" {
		t.Error("C label wrong")
	}
	if (ComboShare{Mask: 1<<dpg.GenC | 1<<dpg.GenI}).Label() != "CI" {
		t.Error("CI label wrong")
	}
	if (ComboShare{Mask: 0}).Label() != "-" {
		t.Error("empty label wrong")
	}
	// ComboPctFor agrees with the share list.
	for _, cs := range combos[:1] {
		got := ComboPctFor([]*dpg.Result{r}, cs.Mask)
		if math.Abs(got-cs.Pct) > 1e-9 {
			t.Error("ComboPctFor disagrees with Combos")
		}
	}
	if ComboPctFor(nil, 1) != 0 {
		t.Error("empty ComboPctFor should be 0")
	}
}

func TestTreeCDFs(t *testing.T) {
	r := resultFor(t, "gcc", predictor.KindContext)
	tc := Trees(r)
	for _, cdf := range []CDF{tc.Trees, tc.Aggregate} {
		if len(cdf.X) == 0 {
			t.Fatal("empty CDF")
		}
		last := cdf.Pct[len(cdf.Pct)-1]
		if math.Abs(last-100) > 1e-9 {
			t.Errorf("CDF does not reach 100: %f", last)
		}
		for i := 1; i < len(cdf.Pct); i++ {
			if cdf.Pct[i] < cdf.Pct[i-1] {
				t.Fatal("CDF not monotone")
			}
		}
	}
	// Paper: most trees are shallow, but deep trees carry most aggregate
	// propagation — the aggregate curve must lag the trees curve.
	if tc.Aggregate.At(8) >= tc.Trees.At(8) {
		t.Errorf("aggregate CDF at depth 8 (%.1f%%) should lag trees CDF (%.1f%%)",
			tc.Aggregate.At(8), tc.Trees.At(8))
	}
}

func TestInfluenceCDFs(t *testing.T) {
	r := resultFor(t, "com", predictor.KindContext)
	ic := Influence(r)
	if len(ic.NumGens.X) != dpg.MaxTrackedGens {
		t.Fatalf("NumGens has %d points", len(ic.NumGens.X))
	}
	// Paper: 70-85% of propagates are influenced by fewer than 4
	// generates; at the very least the CDF at 4 should be substantial.
	if ic.NumGens.At(4) < 50 {
		t.Errorf("propagates with <= 4 generates = %.1f%%, expected the bulk", ic.NumGens.At(4))
	}
	if ic.OverflowPct > 20 {
		t.Errorf("overflow fraction %.1f%% too large for the cap to be honest", ic.OverflowPct)
	}
	if len(ic.Distance.X) == 0 {
		t.Fatal("empty distance CDF")
	}
}

func TestSequences(t *testing.T) {
	r := resultFor(t, "com", predictor.KindStride)
	row := Sequences(r)
	var sum float64
	for _, p := range row.PctByLen {
		sum += p
	}
	if math.Abs(sum-row.PredictablePct) > 1e-9 {
		t.Error("sequence buckets do not sum to the predictable share")
	}
	if row.PredictablePct <= 0 || row.PredictablePct > 100 {
		t.Errorf("predictable share %.1f%% out of range", row.PredictablePct)
	}
	avg := AverageSequences([]SeqRow{row}, "INT")
	if math.Abs(avg.PredictablePct-row.PredictablePct) > 1e-9 {
		t.Error("self-average changed")
	}
}

func TestBranchRows(t *testing.T) {
	r := resultFor(t, "go", predictor.KindContext)
	row := BranchClasses(r)
	var sum float64
	for _, p := range row.Pct {
		sum += p
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("branch classes sum to %.4f", sum)
	}
	if row.Accuracy < 50 || row.Accuracy > 100 {
		t.Errorf("accuracy %.1f%% implausible", row.Accuracy)
	}
	avg := AverageBranches([]BranchRow{row, row}, "INT")
	if math.Abs(avg.Accuracy-row.Accuracy) > 1e-9 {
		t.Error("self-average changed accuracy")
	}
	frac := MispredictedWithPredictableInputs(r)
	if frac < 0 || frac > 100 {
		t.Errorf("mispredicted-with-predictable-inputs %.1f%% out of range", frac)
	}
}

func TestCDFAt(t *testing.T) {
	c := CDF{X: []uint32{0, 1, 3, 7}, Pct: []float64{10, 30, 60, 100}}
	if c.At(0) != 10 || c.At(1) != 30 || c.At(2) != 60 || c.At(7) != 100 || c.At(99) != 100 {
		t.Error("CDF.At lookup wrong")
	}
	if (CDF{}).At(5) != 0 {
		t.Error("empty CDF should return 0")
	}
}

func TestUnpredictabilityMatchesOverallRemainder(t *testing.T) {
	for _, kind := range predictor.Kinds {
		r := resultFor(t, "com", kind)
		u := Unpredictability(r)
		o := Overall(r)
		if math.Abs(u.Total-o.UnpredPct) > 1e-9 {
			t.Errorf("%s: unpred total %.4f != overall remainder %.4f", kind, u.Total, o.UnpredPct)
		}
		if u.ArcNNSingle > u.ArcNN {
			t.Error("single-use <n,n> exceeds all <n,n>")
		}
	}
}

func TestAverageUnpredictability(t *testing.T) {
	a := UnpredRow{NodeNN: 2, ArcNN: 10, Total: 12, Predictor: "stride"}
	b := UnpredRow{NodeNN: 4, ArcNN: 20, Total: 24, Predictor: "stride"}
	avg := AverageUnpredictability([]UnpredRow{a, b}, "INT")
	if avg.NodeNN != 3 || avg.ArcNN != 15 || avg.Total != 18 || avg.Name != "INT" {
		t.Errorf("average wrong: %+v", avg)
	}
	if AverageUnpredictability(nil, "x").Total != 0 {
		t.Error("empty average not zero")
	}
}
