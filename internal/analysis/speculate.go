package analysis

import (
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// SpecConfig parameterises the value-speculation timing model: a W-wide
// machine with unit-latency execution, unbounded window, perfect control
// prediction, and value speculation gated by a confidence threshold.
// Mispredicted speculations charge a recovery penalty to the consuming
// instruction — an approximation of squash-and-reexecute.
//
// This is the quantitative form of the paper's §1.2 argument: "for the
// potential to be realized, it is imperative to have high prediction
// accuracy and infrequent misspeculation. Misspeculation can be mitigated
// somewhat with the use of confidence mechanisms; these are probably
// essential."
type SpecConfig struct {
	// Width is the fetch/issue width (instructions per cycle).
	Width int
	// Threshold gates speculation: operands are used speculatively only
	// when their confidence counter is at least Threshold. 0 speculates on
	// every available prediction.
	Threshold uint8
	// MaxConfidence saturates the confidence counters.
	MaxConfidence uint8
	// Penalty is the recovery charge (cycles) for consuming a wrong
	// speculated value.
	Penalty uint64
}

// SpecStats is the outcome of one timing-model run.
type SpecStats struct {
	Name         string
	Predictor    string
	Config       SpecConfig
	Instructions uint64
	Cycles       uint64
	// Speculations counts operands consumed speculatively; Misspeculations
	// the wrong ones.
	Speculations    uint64
	Misspeculations uint64
}

// IPC returns instructions per cycle.
func (s SpecStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MisspecPct returns the fraction of speculations that were wrong.
func (s SpecStats) MisspecPct() float64 {
	if s.Speculations == 0 {
		return 0
	}
	return 100 * float64(s.Misspeculations) / float64(s.Speculations)
}

// SpecSim is the streaming form of the timing model: feed events one at a
// time with Observe and read the run's statistics with Stats. The fetch
// cycle of each instruction is its position in the observed stream divided
// by the machine width, so the sim's output is identical to running
// Speculate over the materialized trace. Memory stays O(touched memory
// words + predictor), independent of trace length, so a suite can drive
// several sims (one per threshold) in a single pass off a trace-file
// reader without materializing the events.
type SpecSim struct {
	cfg       SpecConfig
	name      string
	predName  string
	pred      *predictor.Confidence
	regs      [isa.NumRegs]uint64
	mem       map[uint32]uint64
	idx       uint64
	lastCycle uint64
	specs     uint64
	misspecs  uint64
}

// NewSpecSim builds a timing-model simulator with the given predictor kind
// on the consumer side (per (PC, slot) keys, immediate update — the
// model's input-side arrangement). It panics if cfg.Width is not positive;
// a zero cfg.MaxConfidence defaults to 7.
func NewSpecSim(name string, kind predictor.Kind, cfg SpecConfig) *SpecSim {
	if cfg.Width <= 0 {
		panic("analysis: speculation width must be positive")
	}
	if cfg.MaxConfidence == 0 {
		cfg.MaxConfidence = 7
	}
	return &SpecSim{
		cfg:      cfg,
		name:     name,
		predName: kind.String(),
		pred:     predictor.NewConfidence(kind.New(), 16, cfg.MaxConfidence),
		mem:      make(map[uint32]uint64),
	}
}

// Observe issues one dynamic instruction through the timing model.
func (s *SpecSim) Observe(e *trace.Event) {
	fetch := s.idx / uint64(s.cfg.Width)
	s.idx++
	ready := fetch
	var penalty uint64
	key := func(pc uint32, slot int) uint64 { return uint64(pc)<<2 | uint64(slot) }

	consume := func(avail uint64, k uint64, actual uint32) {
		conf := s.pred.ConfidenceOf(k)
		pv, ok := s.pred.Predict(k)
		s.pred.Update(k, actual)
		if ok && conf >= s.cfg.Threshold {
			s.specs++
			if pv == actual {
				return // speculated correctly: no wait
			}
			s.misspecs++
			penalty += s.cfg.Penalty
		}
		if avail > ready {
			ready = avail
		}
	}

	for slot := 0; slot < int(e.NSrc); slot++ {
		if e.SrcReg[slot] == 0 {
			continue
		}
		consume(s.regs[e.SrcReg[slot]], key(e.PC, slot), e.SrcVal[slot])
	}
	if isa.IsLoad(e.Op) {
		consume(s.mem[e.Addr&^3], key(e.PC, 2), e.MemVal)
	}

	done := ready + 1 + penalty
	if done > s.lastCycle {
		s.lastCycle = done
	}
	switch {
	case isa.IsStore(e.Op):
		s.mem[e.Addr&^3] = done
	case e.DstReg != isa.NoReg && e.DstReg != 0:
		s.regs[e.DstReg] = done
	}
}

// Stats returns the run's statistics for the events observed so far.
func (s *SpecSim) Stats() SpecStats {
	return SpecStats{
		Name: s.name, Predictor: s.predName, Config: s.cfg,
		Instructions: s.idx, Cycles: s.lastCycle,
		Speculations: s.specs, Misspeculations: s.misspecs,
	}
}

// Speculate runs the timing model over an in-memory trace — the
// materializing façade over SpecSim.
func Speculate(t *trace.Trace, kind predictor.Kind, cfg SpecConfig) SpecStats {
	sim := NewSpecSim(t.Name, kind, cfg)
	for i := range t.Events {
		sim.Observe(&t.Events[i])
	}
	return sim.Stats()
}
