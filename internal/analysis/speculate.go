package analysis

import (
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// SpecConfig parameterises the value-speculation timing model: a W-wide
// machine with unit-latency execution, unbounded window, perfect control
// prediction, and value speculation gated by a confidence threshold.
// Mispredicted speculations charge a recovery penalty to the consuming
// instruction — an approximation of squash-and-reexecute.
//
// This is the quantitative form of the paper's §1.2 argument: "for the
// potential to be realized, it is imperative to have high prediction
// accuracy and infrequent misspeculation. Misspeculation can be mitigated
// somewhat with the use of confidence mechanisms; these are probably
// essential."
type SpecConfig struct {
	// Width is the fetch/issue width (instructions per cycle).
	Width int
	// Threshold gates speculation: operands are used speculatively only
	// when their confidence counter is at least Threshold. 0 speculates on
	// every available prediction.
	Threshold uint8
	// MaxConfidence saturates the confidence counters.
	MaxConfidence uint8
	// Penalty is the recovery charge (cycles) for consuming a wrong
	// speculated value.
	Penalty uint64
}

// SpecStats is the outcome of one timing-model run.
type SpecStats struct {
	Name         string
	Predictor    string
	Config       SpecConfig
	Instructions uint64
	Cycles       uint64
	// Speculations counts operands consumed speculatively; Misspeculations
	// the wrong ones.
	Speculations    uint64
	Misspeculations uint64
}

// IPC returns instructions per cycle.
func (s SpecStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MisspecPct returns the fraction of speculations that were wrong.
func (s SpecStats) MisspecPct() float64 {
	if s.Speculations == 0 {
		return 0
	}
	return 100 * float64(s.Misspeculations) / float64(s.Speculations)
}

// Speculate runs the timing model over a trace with the given predictor
// kind on the consumer side (per (PC, slot) keys, immediate update — the
// model's input-side arrangement).
func Speculate(t *trace.Trace, kind predictor.Kind, cfg SpecConfig) SpecStats {
	if cfg.Width <= 0 {
		panic("analysis: speculation width must be positive")
	}
	if cfg.MaxConfidence == 0 {
		cfg.MaxConfidence = 7
	}
	stats := SpecStats{
		Name: t.Name, Predictor: kind.String(), Config: cfg,
		Instructions: uint64(t.Len()),
	}
	pred := predictor.NewConfidence(kind.New(), 16, cfg.MaxConfidence)

	var regs [isa.NumRegs]uint64
	mem := make(map[uint32]uint64)
	var lastCycle uint64
	key := func(pc uint32, slot int) uint64 { return uint64(pc)<<2 | uint64(slot) }

	for i := range t.Events {
		e := &t.Events[i]
		fetch := uint64(i / cfg.Width)
		ready := fetch
		var penalty uint64

		consume := func(avail uint64, k uint64, actual uint32) {
			conf := pred.ConfidenceOf(k)
			pv, ok := pred.Predict(k)
			pred.Update(k, actual)
			if ok && conf >= cfg.Threshold {
				stats.Speculations++
				if pv == actual {
					return // speculated correctly: no wait
				}
				stats.Misspeculations++
				penalty += cfg.Penalty
			}
			if avail > ready {
				ready = avail
			}
		}

		for slot := 0; slot < int(e.NSrc); slot++ {
			if e.SrcReg[slot] == 0 {
				continue
			}
			consume(regs[e.SrcReg[slot]], key(e.PC, slot), e.SrcVal[slot])
		}
		if isa.IsLoad(e.Op) {
			consume(mem[e.Addr&^3], key(e.PC, 2), e.MemVal)
		}

		done := ready + 1 + penalty
		if done > lastCycle {
			lastCycle = done
		}
		switch {
		case isa.IsStore(e.Op):
			mem[e.Addr&^3] = done
		case e.DstReg != isa.NoReg && e.DstReg != 0:
			regs[e.DstReg] = done
		}
	}
	stats.Cycles = lastCycle
	return stats
}
