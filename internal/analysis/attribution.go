package analysis

import (
	"sort"

	"repro/internal/dpg"
)

// AttributionRow breaks one node class down by operation group: which kinds
// of instructions account for the class. Percentages are of the class's
// total count.
type AttributionRow struct {
	Class    dpg.NodeClass
	Total    uint64
	GroupPct [dpg.NumOpGroups]float64
}

// Attribution computes group attribution rows for the given classes,
// summed across results (the paper reports mixed-benchmark attributions).
func Attribution(results []*dpg.Result, classes []dpg.NodeClass) []AttributionRow {
	rows := make([]AttributionRow, 0, len(classes))
	for _, class := range classes {
		row := AttributionRow{Class: class}
		var byGroup [dpg.NumOpGroups]uint64
		for _, r := range results {
			for g := dpg.OpGroup(0); g < dpg.NumOpGroups; g++ {
				byGroup[g] += r.NodeByGroup[g][class]
				row.Total += r.NodeByGroup[g][class]
			}
		}
		if row.Total > 0 {
			for g := dpg.OpGroup(0); g < dpg.NumOpGroups; g++ {
				row.GroupPct[g] = 100 * float64(byGroup[g]) / float64(row.Total)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// GroupShare returns the percentage of class occurrences attributable to
// the given groups, across results. It quantifies claims like the paper's
// "70%-95% of n,n->p and i,n->p are due to branch, compare, logical, and
// shift instructions".
func GroupShare(results []*dpg.Result, class dpg.NodeClass, groups ...dpg.OpGroup) float64 {
	var total, in uint64
	for _, r := range results {
		for g := dpg.OpGroup(0); g < dpg.NumOpGroups; g++ {
			total += r.NodeByGroup[g][class]
		}
		for _, g := range groups {
			in += r.NodeByGroup[g][class]
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(in) / float64(total)
}

// HotspotRow is one static generate point: a program location whose
// generator instances root predictable trees.
type HotspotRow struct {
	PC       uint32
	Gens     uint64 // generator instances attributed to this PC
	TreeSize uint64 // aggregate propagation rooted here
	GensPct  float64
	TreePct  float64
}

// TopGeneratePoints ranks static instructions by the aggregate propagation
// their generators influence and returns the top n.
func TopGeneratePoints(r *dpg.Result, n int) []HotspotRow {
	rows := make([]HotspotRow, 0, len(r.GenPoints))
	for _, gp := range r.GenPoints {
		row := HotspotRow{PC: gp.PC, Gens: gp.Gens, TreeSize: gp.TreeSize}
		if r.Trees.Gens > 0 {
			row.GensPct = 100 * float64(gp.Gens) / float64(r.Trees.Gens)
		}
		if r.Trees.Size > 0 {
			row.TreePct = 100 * float64(gp.TreeSize) / float64(r.Trees.Size)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TreeSize != rows[j].TreeSize {
			return rows[i].TreeSize > rows[j].TreeSize
		}
		return rows[i].PC < rows[j].PC
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// GenerateConcentration returns the share of generator instances and of
// aggregate propagation contributed by the top-k static generate points —
// the paper's "most predictability originates from a relatively small
// number of generate points".
func GenerateConcentration(r *dpg.Result, k int) (gensPct, treePct float64) {
	top := TopGeneratePoints(r, k)
	for _, row := range top {
		gensPct += row.GensPct
		treePct += row.TreePct
	}
	return gensPct, treePct
}

// StaticGeneratePoints returns the number of distinct static instructions
// that ever generated predictability.
func StaticGeneratePoints(r *dpg.Result) int { return len(r.GenPoints) }
