package analysis

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// observerTrace builds one modest integer-workload trace for the fan-out
// tests.
func observerTrace(t testing.TB) *trace.Trace {
	t.Helper()
	w, ok := workloads.ByName("gcc")
	if !ok {
		t.Fatal("no gcc workload")
	}
	tr, err := w.TraceRounds(w.Rounds/8+2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// soloSims runs each simulator kind alone over tr and returns the
// reference stats.
func soloSims(t *testing.T, tr *trace.Trace) (ReuseStats, ILPStats, []ConfidencePoint, SpecStats) {
	t.Helper()
	reuse := NewReuseSim("gcc", 12)
	ilp := NewILPSim("gcc", predictor.KindContext)
	conf := NewConfidenceSim(predictor.KindContext, 7)
	spec := NewSpecSim("gcc", predictor.KindContext, SpecConfig{Width: 64, Threshold: 3, MaxConfidence: 7, Penalty: 8})
	for _, sim := range []Observer{reuse, ilp, conf, spec} {
		if err := ObserveTrace(tr, sim); err != nil {
			t.Fatal(err)
		}
	}
	return reuse.Stats(), ilp.Stats(), conf.Points(), spec.Stats()
}

// TestObserverOrderInvariance is the metamorphic gate: any registration
// order and any subset of observers yields results identical to running
// each observer alone — observers only read the shared events, so the
// fan-out must be invisible to them.
func TestObserverOrderInvariance(t *testing.T) {
	tr := observerTrace(t)
	wantReuse, wantILP, wantConf, wantSpec := soloSims(t, tr)

	build := func() (*ReuseSim, *ILPSim, *ConfidenceSim, *SpecSim) {
		return NewReuseSim("gcc", 12),
			NewILPSim("gcc", predictor.KindContext),
			NewConfidenceSim(predictor.KindContext, 7),
			NewSpecSim("gcc", predictor.KindContext, SpecConfig{Width: 64, Threshold: 3, MaxConfidence: 7, Penalty: 8})
	}
	orders := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{2, 0, 3, 1},
		{1, 3}, // subset
		{0},    // singleton
	}
	for _, order := range orders {
		reuse, ilp, conf, spec := build()
		all := []Observer{reuse, ilp, conf, spec}
		var obs []Observer
		for _, i := range order {
			obs = append(obs, all[i])
		}
		if err := ObserveTrace(tr, obs...); err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		for _, i := range order {
			switch i {
			case 0:
				if reuse.Stats() != wantReuse {
					t.Errorf("order %v: reuse stats diverge from solo run", order)
				}
			case 1:
				if ilp.Stats() != wantILP {
					t.Errorf("order %v: ILP stats diverge from solo run", order)
				}
			case 2:
				if !reflect.DeepEqual(conf.Points(), wantConf) {
					t.Errorf("order %v: confidence points diverge from solo run", order)
				}
			case 3:
				if spec.Stats() != wantSpec {
					t.Errorf("order %v: speculation stats diverge from solo run", order)
				}
			}
		}
	}
}

// bombObserver panics after observing n events.
type bombObserver struct {
	n    int
	seen int
}

func (b *bombObserver) Observe(e *trace.Event) {
	b.seen++
	if b.seen > b.n {
		panic("bomb")
	}
}

// failFinisher observes nothing and fails at Finish.
type failFinisher struct{ err error }

func (f *failFinisher) Observe(e *trace.Event) {}
func (f *failFinisher) Finish() error          { return f.err }

// countingFinisher records whether Finish ran.
type countingFinisher struct{ finished int }

func (c *countingFinisher) Observe(e *trace.Event) {}
func (c *countingFinisher) Finish() error          { c.finished++; return nil }

// TestObserverPanicIsolation plants a panicking observer between two
// healthy simulators and asserts the failure is typed, attributed to the
// right slot, and invisible to the siblings' results.
func TestObserverPanicIsolation(t *testing.T) {
	tr := observerTrace(t)
	wantReuse, wantILP, _, _ := soloSims(t, tr)

	reuse := NewReuseSim("gcc", 12)
	ilp := NewILPSim("gcc", predictor.KindContext)
	bomb := &bombObserver{n: 3}
	err := ObserveTrace(tr, reuse, bomb, ilp)
	var oe *ObserverError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *ObserverError", err)
	}
	if oe.Index != 1 || oe.Panic == nil {
		t.Errorf("observer error misattributed: %+v", oe)
	}
	if reuse.Stats() != wantReuse {
		t.Error("reuse sibling corrupted by a panicking observer")
	}
	if ilp.Stats() != wantILP {
		t.Error("ILP sibling corrupted by a panicking observer")
	}
}

// TestObserverFinishError checks a Finish failure surfaces typed and
// unwrappable, without stopping sibling Finishers.
func TestObserverFinishError(t *testing.T) {
	tr := observerTrace(t)
	boom := errors.New("finish bomb")
	bad := &failFinisher{err: boom}
	good := &countingFinisher{}
	err := ObserveTrace(tr, bad, good)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the Finish error via Unwrap", err)
	}
	var oe *ObserverError
	if !errors.As(err, &oe) || oe.Index != 0 || oe.Err == nil {
		t.Errorf("finish failure not typed/attributed: %v", err)
	}
	if good.finished != 1 {
		t.Errorf("sibling Finish ran %d times, want 1", good.finished)
	}
}

// TestObserverMultipleFailuresJoined checks every failing observer shows
// up in the joined error, each with its own index.
func TestObserverMultipleFailuresJoined(t *testing.T) {
	tr := observerTrace(t)
	err := ObserveTrace(tr, &bombObserver{n: 0}, NewReuseSim("gcc", 8), &bombObserver{n: 5})
	if err == nil {
		t.Fatal("no error from two panicking observers")
	}
	indices := map[int]bool{}
	for _, sub := range []error{err} {
		var joined interface{ Unwrap() []error }
		if errors.As(sub, &joined) {
			for _, e := range joined.Unwrap() {
				var oe *ObserverError
				if errors.As(e, &oe) {
					indices[oe.Index] = true
				}
			}
		}
	}
	if !indices[0] || !indices[2] {
		t.Errorf("joined error misses a failing observer: %v (got indices %v)", err, indices)
	}
}

// errSource delivers one healthy block, then a decode error.
type errSource struct {
	events []trace.Event
	calls  int
	err    error
}

func (s *errSource) NextBlock(b *trace.Block) error {
	s.calls++
	if s.calls == 1 {
		b.Index = 0
		b.Events = s.events
		return nil
	}
	return s.err
}

// TestObserverSourceErrorSkipsFinish checks a source failure aborts the
// run without calling Finish — partial state must not be finalised — and
// the source error dominates the return.
func TestObserverSourceErrorSkipsFinish(t *testing.T) {
	tr := observerTrace(t)
	boom := errors.New("decode bomb")
	fin := &countingFinisher{}
	err := RunObservers(&errSource{events: tr.Events, err: boom}, fin)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the source error", err)
	}
	if fin.finished != 0 {
		t.Errorf("Finish ran %d times after a source error, want 0", fin.finished)
	}
}

// releaseSource wraps a ParallelReader and counts block releases.
type releaseSource struct {
	pr       *trace.ParallelReader
	released int
}

func (s *releaseSource) NextBlock(b *trace.Block) error { return s.pr.NextBlock(b) }
func (s *releaseSource) ReleaseBlock(b *trace.Block) {
	s.released++
	s.pr.ReleaseBlock(b)
}

// TestObserverBlockRelease checks RunObservers hands every delivered block
// back to a releasing source — the recycling half of the O(block·workers)
// memory contract.
func TestObserverBlockRelease(t *testing.T) {
	tr := observerTrace(t)
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, tr, trace.BlockBytes(8<<10)); err != nil {
		t.Fatal(err)
	}
	pr, err := trace.NewParallelReader(bytes.NewReader(buf.Bytes()), trace.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	src := &releaseSource{pr: pr}
	sim := NewReuseSim("gcc", 12)
	if err := RunObservers(src, sim); err != nil {
		t.Fatal(err)
	}
	if src.released == 0 {
		t.Error("no blocks were released back to the source")
	}
	if sim.Stats().Eligible == 0 {
		t.Error("simulator saw no events")
	}
}

// blockCountingObserver takes the BlockObserver fast path and tallies both
// granularities, proving the fan-out prefers whole blocks.
type blockCountingObserver struct {
	events uint64
	blocks int
}

func (o *blockCountingObserver) Observe(e *trace.Event) { o.events++ }
func (o *blockCountingObserver) ObserveBlock(b *trace.Block) {
	o.blocks++
	o.events += uint64(len(b.Events))
}

// TestObserverBlockFastPath checks a BlockObserver receives whole blocks
// (never per-event calls) and still sees every event exactly once.
func TestObserverBlockFastPath(t *testing.T) {
	tr := observerTrace(t)
	o := &blockCountingObserver{}
	if err := ObserveTrace(tr, o); err != nil {
		t.Fatal(err)
	}
	if o.blocks == 0 {
		t.Error("BlockObserver never took the block fast path")
	}
	if o.events != uint64(len(tr.Events)) {
		t.Errorf("block observer saw %d events, trace has %d", o.events, len(tr.Events))
	}
}

// FuzzObserverFanout is the differential fuzz gate for the fan-out engine:
// for arbitrary (mutated) trace bytes and worker counts, driving a
// simulator through RunObservers over the parallel reader must agree with
// a plain sequential Next loop — same success/failure verdict, and
// identical simulator results on success.
func FuzzObserverFanout(f *testing.F) {
	w, ok := workloads.ByName("fig1")
	if !ok {
		f.Fatal("no fig1 workload")
	}
	tr, err := w.TraceRounds(3, 1)
	if err != nil {
		f.Fatal(err)
	}
	for _, codec := range []trace.Codec{trace.CodecNone, trace.CodecLZ} {
		var buf bytes.Buffer
		if err := trace.WriteAll(&buf, tr, trace.BlockEvents(32), trace.Compression(codec)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), uint8(2))
	}
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		// Sequential reference: a plain Next loop feeding one simulator.
		seqSim := NewReuseSim("", 8)
		var seqErr error
		if r, err := trace.NewReader(bytes.NewReader(data)); err != nil {
			seqErr = err
		} else {
			var e trace.Event
			for {
				err := r.Next(&e)
				if err == io.EOF {
					break
				}
				if err != nil {
					seqErr = err
					break
				}
				seqSim.Observe(&e)
			}
			r.Close()
		}

		// Fused path: RunObservers over the parallel reader.
		fanSim := NewReuseSim("", 8)
		var fanErr error
		if pr, err := trace.NewParallelReader(bytes.NewReader(data), trace.Workers(int(workers%4)+1)); err != nil {
			fanErr = err
		} else {
			fanErr = RunObservers(pr, fanSim)
			pr.Close()
		}

		if (seqErr == nil) != (fanErr == nil) {
			t.Fatalf("verdicts diverge: sequential %v, fan-out %v", seqErr, fanErr)
		}
		if seqErr == nil && seqSim.Stats() != fanSim.Stats() {
			t.Fatalf("stats diverge on identical input: sequential %+v, fan-out %+v",
				seqSim.Stats(), fanSim.Stats())
		}
	})
}
