package analysis

import "repro/internal/dpg"

// UnpredRow decomposes the "missing portion" of Fig. 5 — the elements that
// propagate unpredictability — for one run. The paper (§6) flags the study
// of unpredictability as future work; this extension measures its basic
// structure. All values are percentages of nodes+arcs, so a Fig. 5 row plus
// this row accounts for every element.
type UnpredRow struct {
	Name      string
	Predictor string
	// Node classes with no predicted input and an unpredicted output.
	NodeII float64 // i,i->n: immediate-only instructions that stay unpredicted
	NodeNN float64 // n,n->n: unpredictability flowing through computation
	NodeIN float64 // i,n->n
	// ArcNN is the share of <n,n> arcs (unpredictability propagation along
	// dependences); ArcNNSingle the single-use portion of it.
	ArcNN       float64
	ArcNNSingle float64
	// Neutral is the share of nodes with no classified output.
	Neutral float64
	// Total is the full unpredictability remainder (should equal Fig. 5's
	// unpred column).
	Total float64
}

// Unpredictability computes the unpredictability decomposition for one run.
func Unpredictability(r *dpg.Result) UnpredRow {
	row := UnpredRow{
		Name:        r.Name,
		Predictor:   r.Predictor,
		NodeII:      r.Pct(r.NodeCount[dpg.NodeUnpredII]),
		NodeNN:      r.Pct(r.NodeCount[dpg.NodeUnpredNN]),
		NodeIN:      r.Pct(r.NodeCount[dpg.NodeUnpredIN]),
		ArcNN:       r.Pct(r.ArcTotal(dpg.ArcNN)),
		ArcNNSingle: r.Pct(r.ArcCount[dpg.UseSingle][dpg.ArcNN]),
		Neutral:     r.Pct(r.NeutralNodes),
	}
	row.Total = row.NodeII + row.NodeNN + row.NodeIN + row.ArcNN + row.Neutral
	return row
}

// AverageUnpredictability averages rows (arithmetic mean, as the paper's
// INT/FLOAT bars).
func AverageUnpredictability(rows []UnpredRow, name string) UnpredRow {
	out := UnpredRow{Name: name}
	if len(rows) > 0 {
		out.Predictor = rows[0].Predictor
	}
	n := float64(len(rows))
	if n == 0 {
		return out
	}
	for _, r := range rows {
		out.NodeII += r.NodeII / n
		out.NodeNN += r.NodeNN / n
		out.NodeIN += r.NodeIN / n
		out.ArcNN += r.ArcNN / n
		out.ArcNNSingle += r.ArcNNSingle / n
		out.Neutral += r.Neutral / n
		out.Total += r.Total / n
	}
	return out
}
