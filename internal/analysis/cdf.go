package analysis

import "repro/internal/dpg"

// CDF is a cumulative distribution over the model's logarithmic buckets:
// Pct[i] is the percentage of the population with value <= X[i].
type CDF struct {
	X   []uint32
	Pct []float64
}

// cdfFromHist builds a CDF from a logarithmic histogram, trimming trailing
// empty buckets.
func cdfFromHist(hist []uint64) CDF {
	var total uint64
	last := 0
	for b, c := range hist {
		total += c
		if c > 0 {
			last = b
		}
	}
	out := CDF{}
	if total == 0 {
		return out
	}
	var cum uint64
	for b := 0; b <= last; b++ {
		cum += hist[b]
		out.X = append(out.X, dpg.BucketHi(b))
		out.Pct = append(out.Pct, 100*float64(cum)/float64(total))
	}
	return out
}

// At returns the cumulative percentage at the bucket containing v.
func (c CDF) At(v uint32) float64 {
	if len(c.X) == 0 {
		return 0
	}
	for i, x := range c.X {
		if v <= x {
			return c.Pct[i]
		}
	}
	return 100
}

// TreeCDFs is the Fig. 10 data for one run: the "trees" curve (cumulative
// fraction of generates whose longest path is <= x) and the "aggregate
// propagation" curve (cumulative fraction of all tree elements belonging to
// trees of longest path <= x).
type TreeCDFs struct {
	Name      string
	Predictor string
	Trees     CDF
	Aggregate CDF
}

// Trees computes the Fig. 10 curves for one run.
func Trees(r *dpg.Result) TreeCDFs {
	return TreeCDFs{
		Name:      r.Name,
		Predictor: r.Predictor,
		Trees:     cdfFromHist(r.Trees.GensByDepth[:]),
		Aggregate: cdfFromHist(r.Trees.SizeByDepth[:]),
	}
}

// InfluenceCDFs is the Fig. 11 data for one run: the cumulative number of
// generates influencing a propagate (top graph) and the cumulative distance
// from a propagate to its earliest generate (bottom graph).
type InfluenceCDFs struct {
	Name      string
	Predictor string
	NumGens   CDF
	Distance  CDF
	// OverflowPct is the fraction of propagates whose influence sets
	// overflowed the tracking cap (excluded from NumGens; their true count
	// exceeds dpg.MaxTrackedGens).
	OverflowPct float64
}

// Influence computes the Fig. 11 curves for one run.
func Influence(r *dpg.Result) InfluenceCDFs {
	out := InfluenceCDFs{
		Name:      r.Name,
		Predictor: r.Predictor,
		Distance:  cdfFromHist(r.Path.DistHist[:]),
	}
	// NumGenHist is linear (1..MaxTrackedGens) with an overflow slot.
	h := r.Path.NumGenHist
	var total, cum uint64
	for _, c := range h {
		total += c
	}
	if total == 0 {
		return out
	}
	for k := 1; k <= dpg.MaxTrackedGens; k++ {
		cum += h[k]
		out.NumGens.X = append(out.NumGens.X, uint32(k))
		out.NumGens.Pct = append(out.NumGens.Pct, 100*float64(cum)/float64(total))
	}
	out.OverflowPct = 100 * float64(h[dpg.MaxTrackedGens+1]) / float64(total)
	return out
}

// SeqRow is the Fig. 12 data for one run: the percentage of all dynamic
// instructions contained in maximal predictable sequences of each length
// bucket.
type SeqRow struct {
	Name      string
	Predictor string
	// PctByLen[b] is the share of instructions in runs whose length falls
	// in logarithmic bucket b.
	PctByLen [dpg.HistBuckets]float64
	// PredictablePct is the overall share of fully predictable
	// instructions.
	PredictablePct float64
}

// Sequences computes the Fig. 12 row for one run.
func Sequences(r *dpg.Result) SeqRow {
	row := SeqRow{Name: r.Name, Predictor: r.Predictor}
	if r.Nodes == 0 {
		return row
	}
	for b := 0; b < dpg.HistBuckets; b++ {
		row.PctByLen[b] = 100 * float64(r.Seq.InstrByLen[b]) / float64(r.Nodes)
	}
	row.PredictablePct = 100 * float64(r.Seq.PredictableInstrs) / float64(r.Nodes)
	return row
}

// AverageSequences averages Fig. 12 rows (the paper reports the integer
// average).
func AverageSequences(rows []SeqRow, name string) SeqRow {
	out := SeqRow{Name: name}
	if len(rows) > 0 {
		out.Predictor = rows[0].Predictor
	}
	for b := 0; b < dpg.HistBuckets; b++ {
		vals := make([]float64, len(rows))
		for i, r := range rows {
			vals[i] = r.PctByLen[b]
		}
		out.PctByLen[b] = mean(vals)
	}
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = r.PredictablePct
	}
	out.PredictablePct = mean(vals)
	return out
}

// BranchRow is the Fig. 13 data for one run: the share of conditional
// branches in each classification, as a percentage of all branches.
type BranchRow struct {
	Name      string
	Predictor string
	// Pct is indexed by dpg.NodeClass.
	Pct [12]float64
	// Accuracy is the overall gshare prediction accuracy.
	Accuracy float64
}

// BranchClasses computes the Fig. 13 row for one run.
func BranchClasses(r *dpg.Result) BranchRow {
	row := BranchRow{Name: r.Name, Predictor: r.Predictor}
	if r.Branch.Branches == 0 {
		return row
	}
	for c := 0; c < 12; c++ {
		row.Pct[c] = 100 * float64(r.Branch.Count[c]) / float64(r.Branch.Branches)
	}
	row.Accuracy = 100 * float64(r.Branch.Correct) / float64(r.Branch.Branches)
	return row
}

// AverageBranches averages Fig. 13 rows.
func AverageBranches(rows []BranchRow, name string) BranchRow {
	out := BranchRow{Name: name}
	if len(rows) > 0 {
		out.Predictor = rows[0].Predictor
	}
	for c := 0; c < 12; c++ {
		vals := make([]float64, len(rows))
		for i, r := range rows {
			vals[i] = r.Pct[c]
		}
		out.Pct[c] = mean(vals)
	}
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = r.Accuracy
	}
	out.Accuracy = mean(vals)
	return out
}

// MispredictedWithPredictableInputs returns the share of mispredicted
// branches whose inputs were all value-predictable (the paper: "slightly
// over half of branch mispredictions occur when all input values are
// predictable").
func MispredictedWithPredictableInputs(r *dpg.Result) float64 {
	mis := r.Branch.Count[dpg.NodeTermPP] + r.Branch.Count[dpg.NodeTermPI] + r.Branch.Count[dpg.NodeTermPN] +
		r.Branch.Count[dpg.NodeUnpredII] + r.Branch.Count[dpg.NodeUnpredNN] + r.Branch.Count[dpg.NodeUnpredIN]
	if mis == 0 {
		return 0
	}
	allPred := r.Branch.Count[dpg.NodeTermPP] + r.Branch.Count[dpg.NodeTermPI]
	return 100 * float64(allPred) / float64(mis)
}
