package analysis

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/trace"
)

// This file is the observer fan-out engine: the piece that turns "five
// experiments, five decodes" into "five experiments, one decode". Every
// streaming experiment in this package (ReuseSim, ILPSim, ConfidenceSim,
// SpecSim — and, in internal/core, the model pipeline itself) satisfies
// Observer; RunObservers registers any set of them onto one shared decode
// of a trace, delivering each decoded block to every observer in turn
// before asking the source for the next one. Memory stays at the source's
// own ceiling — O(block · workers) for the parallel reader — no matter how
// many observers ride along.
//
// Isolation contract: a panicking observer is caught, converted to a typed
// *ObserverError, and removed from the fan-out; the surviving observers
// keep receiving every block and still get their Finish call. Sibling
// results are never corrupted by one observer's failure, because observers
// only read the shared events.

// Observer consumes a stream of decoded events. Events arrive in stream
// order. The *trace.Event pointers alias a shared, reader-owned buffer:
// observers must treat them as read-only and must not retain them past the
// return of Observe.
type Observer interface {
	Observe(e *trace.Event)
}

// BlockObserver is an Observer that prefers whole decoded blocks — the
// fast path for consumers with their own batch interface. The same
// aliasing rules apply to b and b.Events: read-only, valid only until
// ObserveBlock returns.
type BlockObserver interface {
	Observer
	ObserveBlock(b *trace.Block)
}

// Finisher is an Observer with an end-of-stream hook. RunObservers calls
// Finish exactly once, after the source has returned a clean io.EOF —
// never after a source error, and never on an observer that has already
// failed.
type Finisher interface {
	Finish() error
}

// BlockSource is where RunObservers pulls decoded blocks from. The
// contract is trace.(*ParallelReader).NextBlock's: io.EOF ends the stream
// cleanly, any other error is a decode failure. Sources that additionally
// implement ReleaseBlock(*trace.Block) (as the parallel reader does) get
// each block handed back once every observer has seen it, keeping the
// whole fan-out at the source's own memory ceiling.
type BlockSource interface {
	NextBlock(b *trace.Block) error
}

// blockReleaser is the optional recycling half of BlockSource.
type blockReleaser interface {
	ReleaseBlock(b *trace.Block)
}

// ObserverError reports one observer's failure — a panic during Observe /
// ObserveBlock, or an error from Finish — identified by its position in
// the RunObservers argument list. Match with errors.As.
type ObserverError struct {
	// Index is the observer's position in the RunObservers argument list.
	Index int
	// Kind is the observer's concrete Go type.
	Kind string
	// Panic is the recovered panic value, nil if the failure was a Finish
	// error.
	Panic any
	// Err is the error Finish returned, nil if the failure was a panic.
	Err error
}

func (e *ObserverError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("analysis: observer %d (%s) panicked: %v", e.Index, e.Kind, e.Panic)
	}
	return fmt.Sprintf("analysis: observer %d (%s): %v", e.Index, e.Kind, e.Err)
}

// Unwrap exposes a Finish error for errors.Is matching; panics have
// nothing to unwrap.
func (e *ObserverError) Unwrap() error { return e.Err }

// RunObservers drains src, delivering every decoded block to every
// observer, in argument order, before pulling the next block — one decode
// serving the whole set. On a clean end of stream each surviving
// Finisher's Finish runs; the returned error joins every observer failure
// (each a *ObserverError), or is nil if all observers survived.
//
// A source error aborts the run immediately: Finish is NOT called (the
// observers' accumulated state reflects an incomplete stream and it is the
// caller's decision whether partial results mean anything), and the source
// error is returned joined with any observer failures accumulated so far.
//
// Observers run on the calling goroutine; nothing here is concurrent, so
// observers need no locking among themselves.
func RunObservers(src BlockSource, obs ...Observer) error {
	errs := make([]error, len(obs))
	live := len(obs)
	rel, canRelease := src.(blockReleaser)
	var b trace.Block
	for live > 0 {
		err := src.NextBlock(&b)
		if err == io.EOF {
			break
		}
		if err != nil {
			return joinErrs(append([]error{err}, errs...))
		}
		for i, o := range obs {
			if errs[i] != nil {
				continue
			}
			if oerr := observeBlock(i, o, &b); oerr != nil {
				errs[i] = oerr
				live--
			}
		}
		if canRelease {
			rel.ReleaseBlock(&b)
		}
	}
	for i, o := range obs {
		if errs[i] != nil {
			continue
		}
		if f, ok := o.(Finisher); ok {
			errs[i] = finishObserver(i, o, f)
		}
	}
	return joinErrs(errs)
}

// observeBlock delivers one block to one observer, converting a panic into
// a typed error so a crashing observer cannot take down its siblings.
func observeBlock(i int, o Observer, b *trace.Block) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &ObserverError{Index: i, Kind: fmt.Sprintf("%T", o), Panic: p}
		}
	}()
	if bo, ok := o.(BlockObserver); ok {
		bo.ObserveBlock(b)
		return nil
	}
	for j := range b.Events {
		o.Observe(&b.Events[j])
	}
	return nil
}

// finishObserver runs one observer's Finish under the same panic isolation
// as delivery.
func finishObserver(i int, o Observer, f Finisher) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &ObserverError{Index: i, Kind: fmt.Sprintf("%T", o), Panic: p}
		}
	}()
	if ferr := f.Finish(); ferr != nil {
		return &ObserverError{Index: i, Kind: fmt.Sprintf("%T", o), Err: ferr}
	}
	return nil
}

// joinErrs collapses a slice of possibly-nil errors: nil when none fired,
// the error itself when exactly one did, errors.Join otherwise.
func joinErrs(errs []error) error {
	var fired []error
	for _, err := range errs {
		if err != nil {
			fired = append(fired, err)
		}
	}
	switch len(fired) {
	case 0:
		return nil
	case 1:
		return fired[0]
	}
	return errors.Join(fired...)
}

// traceSource adapts an in-memory trace to BlockSource: one block holding
// the whole event slice, then io.EOF. It has no ReleaseBlock — the events
// belong to the trace.
type traceSource struct {
	t    *trace.Trace
	done bool
}

func (s *traceSource) NextBlock(b *trace.Block) error {
	if s.done {
		return io.EOF
	}
	s.done = true
	b.Index = 0
	b.Events = s.t.Events
	return nil
}

// ObserveTrace runs the observer set over an in-memory trace, with the
// same delivery, isolation, and Finish contract as RunObservers.
func ObserveTrace(t *trace.Trace, obs ...Observer) error {
	return RunObservers(&traceSource{t: t}, obs...)
}
