package analysis

import (
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// ConfidencePoint is one point of a confidence sweep: at a gating threshold
// t, the fraction of value-producing instructions whose prediction would be
// attempted (confidence >= t) and the accuracy of those attempts. The paper
// (§1.2) points at confidence mechanisms as essential for turning
// predictability into speculation; the sweep shows the coverage/accuracy
// trade the mechanism buys.
type ConfidencePoint struct {
	Threshold   uint8
	CoveragePct float64
	AccuracyPct float64
}

// ConfidenceSim is the streaming form of the confidence sweep: feed events
// one at a time with Observe and read the per-threshold points with
// Points. Memory stays O(predictor + maxLevel), independent of trace
// length, so a suite can drive it straight off a trace-file reader without
// materializing the events.
type ConfidenceSim struct {
	p        *predictor.Confidence
	maxLevel uint8
	attempts []uint64
	hits     []uint64
	total    uint64
}

// NewConfidenceSim simulates output-side value prediction (per-PC keys,
// like the model's output predictor; pass-through instructions and
// branches are excluded) gated by a saturating confidence counter with
// levels 0..maxLevel.
func NewConfidenceSim(kind predictor.Kind, maxLevel uint8) *ConfidenceSim {
	return &ConfidenceSim{
		p:        predictor.NewConfidence(kind.New(), 16, maxLevel),
		maxLevel: maxLevel,
		attempts: make([]uint64, maxLevel+1),
		hits:     make([]uint64, maxLevel+1),
	}
}

// Observe feeds one dynamic instruction through the gated predictor.
func (c *ConfidenceSim) Observe(e *trace.Event) {
	if !isa.InfoFor(e.Op).HasRd || isa.IsPassThrough(e.Op) || isa.IsBranch(e.Op) || e.Op == isa.OpJal {
		return
	}
	key := uint64(e.PC)
	conf := c.p.ConfidenceOf(key)
	pred, ok := c.p.Predict(key)
	correct := ok && pred == e.DstVal
	c.total++
	for th := uint8(0); th <= c.maxLevel; th++ {
		if conf >= th {
			c.attempts[th]++
			if correct {
				c.hits[th]++
			}
		}
	}
	c.p.Update(key, e.DstVal)
}

// Points returns one coverage/accuracy point per threshold 0..maxLevel for
// the events observed so far.
func (c *ConfidenceSim) Points() []ConfidencePoint {
	points := make([]ConfidencePoint, 0, c.maxLevel+1)
	for th := uint8(0); th <= c.maxLevel; th++ {
		pt := ConfidencePoint{Threshold: th}
		if c.total > 0 {
			pt.CoveragePct = 100 * float64(c.attempts[th]) / float64(c.total)
		}
		if c.attempts[th] > 0 {
			pt.AccuracyPct = 100 * float64(c.hits[th]) / float64(c.attempts[th])
		}
		points = append(points, pt)
	}
	return points
}

// ConfidenceSweep runs the sweep over an in-memory trace — the
// materializing façade over ConfidenceSim.
func ConfidenceSweep(t *trace.Trace, kind predictor.Kind, maxLevel uint8) []ConfidencePoint {
	sim := NewConfidenceSim(kind, maxLevel)
	for i := range t.Events {
		sim.Observe(&t.Events[i])
	}
	return sim.Points()
}
