package analysis

import (
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// ConfidencePoint is one point of a confidence sweep: at a gating threshold
// t, the fraction of value-producing instructions whose prediction would be
// attempted (confidence >= t) and the accuracy of those attempts. The paper
// (§1.2) points at confidence mechanisms as essential for turning
// predictability into speculation; the sweep shows the coverage/accuracy
// trade the mechanism buys.
type ConfidencePoint struct {
	Threshold   uint8
	CoveragePct float64
	AccuracyPct float64
}

// ConfidenceSweep simulates output-side value prediction (per-PC keys, like
// the model's output predictor; pass-through instructions and branches are
// excluded) gated by a saturating confidence counter, and returns one point
// per threshold 0..maxLevel.
func ConfidenceSweep(t *trace.Trace, kind predictor.Kind, maxLevel uint8) []ConfidencePoint {
	p := predictor.NewConfidence(kind.New(), 16, maxLevel)
	attempts := make([]uint64, maxLevel+1)
	hits := make([]uint64, maxLevel+1)
	var total uint64

	for i := range t.Events {
		e := &t.Events[i]
		if !isa.InfoFor(e.Op).HasRd || isa.IsPassThrough(e.Op) || isa.IsBranch(e.Op) || e.Op == isa.OpJal {
			continue
		}
		key := uint64(e.PC)
		conf := p.ConfidenceOf(key)
		pred, ok := p.Predict(key)
		correct := ok && pred == e.DstVal
		total++
		for th := uint8(0); th <= maxLevel; th++ {
			if conf >= th {
				attempts[th]++
				if correct {
					hits[th]++
				}
			}
		}
		p.Update(key, e.DstVal)
	}

	points := make([]ConfidencePoint, 0, maxLevel+1)
	for th := uint8(0); th <= maxLevel; th++ {
		pt := ConfidencePoint{Threshold: th}
		if total > 0 {
			pt.CoveragePct = 100 * float64(attempts[th]) / float64(total)
		}
		if attempts[th] > 0 {
			pt.AccuracyPct = 100 * float64(hits[th]) / float64(attempts[th])
		}
		points = append(points, pt)
	}
	return points
}
