package analysis

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// ReuseStats measures dynamic instruction reuse potential (Sodani & Sohi,
// cited by the paper as a related technique; §6 suggests reuse/memoization
// of predictable regions). A direct-mapped reuse buffer is simulated: each
// entry remembers the last (PC, source values) tuple and the output it
// produced; a dynamic instruction is reusable when its tuple hits and the
// stored output matches.
type ReuseStats struct {
	Name string
	// Eligible counts register-result dynamic instructions (computation
	// and loads; branches, stores and program input are excluded). Load
	// tuples include the memory value, so a hit is a true reuse.
	Eligible uint64
	// Reused counts eligible instructions whose tuple hit the buffer.
	Reused uint64
	// Loads / LoadsReused split out memory reads.
	Loads       uint64
	LoadsReused uint64
}

// ReusePct returns the overall reuse hit rate in percent.
func (s ReuseStats) ReusePct() float64 {
	if s.Eligible == 0 {
		return 0
	}
	return 100 * float64(s.Reused) / float64(s.Eligible)
}

// reuseEntry is one direct-mapped buffer slot.
type reuseEntry struct {
	key    uint64
	output uint32
	valid  bool
}

// Reuse simulates a 2^bits-entry reuse buffer over the trace.
func Reuse(t *trace.Trace, bits int) ReuseStats {
	if bits <= 0 || bits > 26 {
		panic("analysis: reuse buffer bits out of range")
	}
	table := make([]reuseEntry, 1<<uint(bits))
	mask := uint64(len(table) - 1)
	stats := ReuseStats{Name: t.Name}

	for i := range t.Events {
		e := &t.Events[i]
		info := isa.InfoFor(e.Op)
		if !info.HasRd || isa.IsBranch(e.Op) || e.Op == isa.OpIn {
			continue // only register-result computation is memoizable
		}
		// Tuple: PC plus every consumed value (register sources and, for
		// loads, the memory value).
		key := uint64(e.PC)*0x9e3779b97f4a7c15 + 1
		for s := uint8(0); s < e.NSrc; s++ {
			key = (key ^ uint64(e.SrcVal[s])) * 0x100000001b3
		}
		isLoad := isa.IsLoad(e.Op)
		if isLoad {
			key = (key ^ uint64(e.MemVal)) * 0x100000001b3
		}
		stats.Eligible++
		if isLoad {
			stats.Loads++
		}
		slot := &table[(key^key>>29)&mask]
		if slot.valid && slot.key == key && slot.output == e.DstVal {
			stats.Reused++
			if isLoad {
				stats.LoadsReused++
			}
		}
		slot.key = key
		slot.output = e.DstVal
		slot.valid = true
	}
	return stats
}
