package analysis

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// ReuseStats measures dynamic instruction reuse potential (Sodani & Sohi,
// cited by the paper as a related technique; §6 suggests reuse/memoization
// of predictable regions). A direct-mapped reuse buffer is simulated: each
// entry remembers the last (PC, source values) tuple and the output it
// produced; a dynamic instruction is reusable when its tuple hits and the
// stored output matches.
type ReuseStats struct {
	Name string
	// Eligible counts register-result dynamic instructions (computation
	// and loads; branches, stores and program input are excluded). Load
	// tuples include the memory value, so a hit is a true reuse.
	Eligible uint64
	// Reused counts eligible instructions whose tuple hit the buffer.
	Reused uint64
	// Loads / LoadsReused split out memory reads.
	Loads       uint64
	LoadsReused uint64
}

// ReusePct returns the overall reuse hit rate in percent.
func (s ReuseStats) ReusePct() float64 {
	if s.Eligible == 0 {
		return 0
	}
	return 100 * float64(s.Reused) / float64(s.Eligible)
}

// reuseEntry is one direct-mapped buffer slot.
type reuseEntry struct {
	key    uint64
	output uint32
	valid  bool
}

// ReuseSim is the streaming form of the reuse-buffer study: feed events
// one at a time with Observe and read the totals with Stats. Memory stays
// O(buffer), independent of trace length, so a suite can drive it straight
// off a trace-file reader without materializing the events.
type ReuseSim struct {
	table []reuseEntry
	mask  uint64
	stats ReuseStats
}

// NewReuseSim simulates a 2^bits-entry direct-mapped reuse buffer.
func NewReuseSim(name string, bits int) *ReuseSim {
	if bits <= 0 || bits > 26 {
		panic("analysis: reuse buffer bits out of range")
	}
	table := make([]reuseEntry, 1<<uint(bits))
	return &ReuseSim{table: table, mask: uint64(len(table) - 1), stats: ReuseStats{Name: name}}
}

// Observe feeds one dynamic instruction through the reuse buffer.
func (r *ReuseSim) Observe(e *trace.Event) {
	info := isa.InfoFor(e.Op)
	if !info.HasRd || isa.IsBranch(e.Op) || e.Op == isa.OpIn {
		return // only register-result computation is memoizable
	}
	// Tuple: PC plus every consumed value (register sources and, for
	// loads, the memory value).
	key := uint64(e.PC)*0x9e3779b97f4a7c15 + 1
	for s := uint8(0); s < e.NSrc; s++ {
		key = (key ^ uint64(e.SrcVal[s])) * 0x100000001b3
	}
	isLoad := isa.IsLoad(e.Op)
	if isLoad {
		key = (key ^ uint64(e.MemVal)) * 0x100000001b3
	}
	r.stats.Eligible++
	if isLoad {
		r.stats.Loads++
	}
	slot := &r.table[(key^key>>29)&r.mask]
	if slot.valid && slot.key == key && slot.output == e.DstVal {
		r.stats.Reused++
		if isLoad {
			r.stats.LoadsReused++
		}
	}
	slot.key = key
	slot.output = e.DstVal
	slot.valid = true
}

// Stats returns the totals observed so far.
func (r *ReuseSim) Stats() ReuseStats { return r.stats }

// Reuse simulates a 2^bits-entry reuse buffer over an in-memory trace —
// the materializing façade over ReuseSim.
func Reuse(t *trace.Trace, bits int) ReuseStats {
	sim := NewReuseSim(t.Name, bits)
	for i := range t.Events {
		sim.Observe(&t.Events[i])
	}
	return sim.Stats()
}
