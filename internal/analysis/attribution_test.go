package analysis

import (
	"math"
	"testing"

	"repro/internal/dpg"
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func TestAttributionRowsSum(t *testing.T) {
	r := resultFor(t, "gcc", predictor.KindContext)
	classes := []dpg.NodeClass{dpg.NodeGenNN, dpg.NodeGenIN, dpg.NodeTermPN, dpg.NodePropPN}
	rows := Attribution([]*dpg.Result{r}, classes)
	if len(rows) != len(classes) {
		t.Fatal("row count wrong")
	}
	for _, row := range rows {
		if row.Total == 0 {
			continue
		}
		var sum float64
		for _, p := range row.GroupPct {
			sum += p
		}
		if math.Abs(sum-100) > 1e-6 {
			t.Errorf("%s: group percentages sum to %.4f", row.Class, sum)
		}
	}
}

func TestPaperAttributionClaims(t *testing.T) {
	// The paper (§4.2): 70-95% of n,n->p and i,n->p generation is due to
	// branch, compare, logical and shift instructions. Our workloads land
	// in or above that band.
	results := []*dpg.Result{
		resultFor(t, "gcc", predictor.KindContext),
		resultFor(t, "com", predictor.KindContext),
		resultFor(t, "go", predictor.KindContext),
	}
	share := GroupShare(results, dpg.NodeGenIN,
		dpg.GroupBranch, dpg.GroupCompare, dpg.GroupLogical, dpg.GroupShift)
	if share < 60 {
		t.Errorf("branch/compare/logical/shift share of i,n->p = %.1f%%, paper band is 70-95%%", share)
	}
	// §4.4: p,n->n terminations come primarily from memory instructions,
	// with the remainder mostly adds.
	memAdd := GroupShare(results, dpg.NodeTermPN, dpg.GroupMemory, dpg.GroupAddSub, dpg.GroupFloat)
	if memAdd < 60 {
		t.Errorf("memory+add share of p,n->n = %.1f%%, paper calls these the primary causes", memAdd)
	}
}

func TestGroupShareEmpty(t *testing.T) {
	if GroupShare(nil, dpg.NodeGenNN, dpg.GroupBranch) != 0 {
		t.Error("empty results should give 0")
	}
}

func TestTopGeneratePoints(t *testing.T) {
	r := resultFor(t, "gcc", predictor.KindContext)
	top := TopGeneratePoints(r, 5)
	if len(top) == 0 {
		t.Fatal("no generate points")
	}
	if len(top) > 5 {
		t.Fatal("limit ignored")
	}
	for i := 1; i < len(top); i++ {
		if top[i].TreeSize > top[i-1].TreeSize {
			t.Fatal("not sorted by tree size")
		}
	}
	for _, row := range top {
		if row.Gens == 0 {
			t.Error("generate point with zero generators")
		}
		if row.GensPct < 0 || row.GensPct > 100 || row.TreePct < 0 || row.TreePct > 100 {
			t.Error("percentages out of range")
		}
	}
}

func TestGenerateConcentration(t *testing.T) {
	// The paper's §4.5 conclusion: relatively few generates influence the
	// majority of predictability. With a handful of static points the bulk
	// of aggregate propagation must be covered.
	r := resultFor(t, "gcc", predictor.KindContext)
	gens, tree := GenerateConcentration(r, 10)
	if tree < 50 {
		t.Errorf("top-10 static generate points carry %.1f%% of propagation; expected the majority", tree)
	}
	if gens <= 0 || gens > 100 {
		t.Errorf("gens concentration %.1f%% out of range", gens)
	}
	n := StaticGeneratePoints(r)
	if n == 0 || n > 200 {
		t.Errorf("static generate points = %d, implausible", n)
	}
	// Concentration with k >= all points is exactly 100%.
	_, all := GenerateConcentration(r, n)
	if math.Abs(all-100) > 1e-6 {
		t.Errorf("full concentration = %.4f%%, want 100%%", all)
	}
}

func TestReuse(t *testing.T) {
	w, _ := workloads.ByName("gcc")
	tr, err := w.TraceRounds(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs := Reuse(tr, 16)
	if rs.Name != "gcc" {
		t.Error("name lost")
	}
	if rs.Eligible == 0 {
		t.Fatal("no eligible instructions")
	}
	if rs.Reused > rs.Eligible || rs.LoadsReused > rs.Loads {
		t.Error("reuse counts exceed eligible counts")
	}
	// gcc's loop re-executes identical work each round: reuse must be high.
	if rs.ReusePct() < 50 {
		t.Errorf("reuse = %.1f%%, expected substantial on a loop-dominated code", rs.ReusePct())
	}
	// A tiny buffer must not beat a big one.
	small := Reuse(tr, 4)
	if small.ReusePct() > rs.ReusePct()+1e-9 {
		t.Errorf("smaller buffer reuse %.1f%% exceeds larger %.1f%%", small.ReusePct(), rs.ReusePct())
	}
}

func TestReusePanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bits accepted")
		}
	}()
	w, _ := workloads.ByName("fig1")
	tr, _ := w.TraceRounds(2, 1)
	Reuse(tr, 0)
}

func TestReuseEmptyTrace(t *testing.T) {
	empty := &trace.Trace{Name: "empty"}
	rs := Reuse(empty, 8)
	if rs.Eligible != 0 || rs.ReusePct() != 0 {
		t.Error("empty trace should yield zero stats")
	}
}

func TestConfidenceSweep(t *testing.T) {
	w, _ := workloads.ByName("com")
	tr, err := w.TraceRounds(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	points := ConfidenceSweep(tr, predictor.KindContext, 7)
	if len(points) != 8 {
		t.Fatalf("got %d points, want 8", len(points))
	}
	if points[0].CoveragePct != 100 {
		t.Errorf("threshold 0 coverage = %.1f%%, want 100%%", points[0].CoveragePct)
	}
	for i := 1; i < len(points); i++ {
		if points[i].CoveragePct > points[i-1].CoveragePct+1e-9 {
			t.Fatal("coverage must be non-increasing in the threshold")
		}
	}
	// Gating must buy accuracy: the strictest gate beats ungated.
	if points[7].AccuracyPct <= points[0].AccuracyPct {
		t.Errorf("gated accuracy %.1f%% should beat ungated %.1f%%",
			points[7].AccuracyPct, points[0].AccuracyPct)
	}
}

func TestILPChainExact(t *testing.T) {
	// A fully serial dependence chain: base critical path = chain length.
	tr := trace.New("chain", 1)
	for i := 0; i < 100; i++ {
		tr.Append(trace.Event{
			PC: 0, Op: isa.OpAddi, NSrc: 1,
			SrcReg: [2]uint8{8, 0}, SrcVal: [2]uint32{uint32(i), 0},
			DstReg: 8, DstVal: uint32(i + 1), HasImm: true,
		})
	}
	st := ILP(tr, predictor.KindLast)
	if st.CritPathBase != 100 {
		t.Errorf("serial chain critical path = %d, want 100", st.CritPathBase)
	}
	if st.ILPBase() < 0.99 || st.ILPBase() > 1.01 {
		t.Errorf("serial chain ILP = %.2f, want 1.0", st.ILPBase())
	}
	// Last-value cannot break a +1 chain; stride can (after warm-up).
	if st.Speedup() > 1.01 {
		t.Errorf("last-value speedup on a stride chain = %.2f, want ~1", st.Speedup())
	}
	stStride := ILP(tr, predictor.KindStride)
	if stStride.Speedup() < 10 {
		t.Errorf("stride should collapse the counter chain: speedup %.2f", stStride.Speedup())
	}
}

func TestILPNeverSlowsDown(t *testing.T) {
	// Breaking dependences can only shorten the critical path.
	for _, name := range []string{"com", "gcc", "m88"} {
		w, _ := workloads.ByName(name)
		tr, err := w.TraceRounds(w.Rounds/10+2, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range predictor.Kinds {
			st := ILP(tr, k)
			if st.CritPathVP > st.CritPathBase {
				t.Errorf("%s/%s: VP critical path %d exceeds base %d",
					name, k, st.CritPathVP, st.CritPathBase)
			}
			if st.Instructions != uint64(tr.Len()) {
				t.Error("instruction count wrong")
			}
		}
	}
}

func TestILPEmptyTrace(t *testing.T) {
	st := ILP(&trace.Trace{Name: "empty"}, predictor.KindLast)
	if st.ILPBase() != 0 || st.ILPVP() != 0 || st.Speedup() != 0 {
		t.Error("empty trace should yield zero stats")
	}
}

func TestSpeculateFrontendBound(t *testing.T) {
	// Independent instructions: cycles ~= N/width when nothing speculates.
	tr := trace.New("indep", 1)
	for i := 0; i < 1000; i++ {
		tr.Append(trace.Event{PC: 0, Op: isa.OpLi, DstReg: 8, DstVal: uint32(i), HasImm: true})
	}
	st := Speculate(tr, predictor.KindLast, SpecConfig{Width: 4, Threshold: 8, Penalty: 8})
	if st.Cycles < 250 || st.Cycles > 260 {
		t.Errorf("frontend-bound cycles = %d, want ~250", st.Cycles)
	}
	if st.Speculations != 0 {
		t.Errorf("threshold above saturation must never speculate (got %d)", st.Speculations)
	}
}

func TestSpeculateChain(t *testing.T) {
	// Serial +1 chain, wide machine: without speculation, dataflow-bound at
	// ~N cycles; with stride speculation the chain collapses.
	tr := trace.New("chain", 1)
	for i := 0; i < 500; i++ {
		tr.Append(trace.Event{
			PC: 0, Op: isa.OpAddi, NSrc: 1,
			SrcReg: [2]uint8{8, 0}, SrcVal: [2]uint32{uint32(i), 0},
			DstReg: 8, DstVal: uint32(i + 1), HasImm: true,
		})
	}
	base := Speculate(tr, predictor.KindStride, SpecConfig{Width: 64, Threshold: 8, Penalty: 8})
	spec := Speculate(tr, predictor.KindStride, SpecConfig{Width: 64, Threshold: 1, Penalty: 8})
	if base.Cycles < 500 {
		t.Errorf("unspeculated chain cycles = %d, want >= 500", base.Cycles)
	}
	if spec.IPC() <= 2*base.IPC() {
		t.Errorf("speculated chain IPC %.2f should far exceed base %.2f", spec.IPC(), base.IPC())
	}
	if spec.Misspeculations > spec.Speculations {
		t.Error("misspeculations exceed speculations")
	}
}

func TestSpeculateConfidenceProtects(t *testing.T) {
	// An unpredictable input chain: ungated speculation pays recovery
	// penalties and must not beat a high-threshold gate.
	r := newTestRNG(77)
	tr := trace.New("noise", 2)
	for i := 0; i < 4000; i++ {
		tr.Append(trace.Event{
			PC: 0, Op: isa.OpIn, DstReg: 8, DstVal: 0, MemVal: r(),
		})
		tr.Append(trace.Event{
			PC: 1, Op: isa.OpAdd, NSrc: 2,
			SrcReg: [2]uint8{8, 8}, SrcVal: [2]uint32{r(), r()},
			DstReg: 9, DstVal: r(),
		})
	}
	ungated := Speculate(tr, predictor.KindContext, SpecConfig{Width: 64, Threshold: 0, Penalty: 8})
	gated := Speculate(tr, predictor.KindContext, SpecConfig{Width: 64, Threshold: 7, Penalty: 8})
	if ungated.MisspecPct() < gated.MisspecPct() {
		t.Errorf("gating should reduce misspeculation rate: %.1f%% vs %.1f%%",
			ungated.MisspecPct(), gated.MisspecPct())
	}
	if gated.IPC() < ungated.IPC() {
		t.Errorf("on unpredictable data, gated IPC %.2f should be >= ungated %.2f",
			gated.IPC(), ungated.IPC())
	}
}

// newTestRNG returns a deterministic uint32 generator.
func newTestRNG(seed uint32) func() uint32 {
	x := seed
	return func() uint32 {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		return x
	}
}

func TestSpeculatePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 0 accepted")
		}
	}()
	Speculate(&trace.Trace{}, predictor.KindLast, SpecConfig{Width: 0})
}
