// Package analysis turns raw model results (dpg.Result) into the data
// series behind each table and figure of the paper's evaluation section.
// Rendering lives in internal/report; this package is pure computation so
// the figures are testable.
package analysis

import (
	"sort"

	"repro/internal/dpg"
)

// Table1Row is one benchmark row of Table 1 (benchmark characteristics).
type Table1Row struct {
	Name       string
	Nodes      uint64
	Arcs       uint64
	EdgesPerNd float64 // arcs/nodes ratio (~1.5 INT, ~1.7 FP in the paper)
	DNodePct   float64 // D nodes as % of nodes (paper: < .03%)
	DArcPct    float64 // arcs from D nodes as % of arcs (paper: < 1%, max 2.6%)
}

// Table1 summarises the DPG characteristics of each run. The statistics
// are predictor-independent, so any predictor's results work.
func Table1(results []*dpg.Result) []Table1Row {
	rows := make([]Table1Row, 0, len(results))
	for _, r := range results {
		row := Table1Row{
			Name:       r.Name,
			Nodes:      r.Nodes,
			Arcs:       r.Arcs,
			EdgesPerNd: r.EdgesPerNode(),
		}
		if r.Nodes > 0 {
			row.DNodePct = 100 * float64(r.DNodes) / float64(r.Nodes)
		}
		if r.Arcs > 0 {
			row.DArcPct = 100 * float64(r.DArcs) / float64(r.Arcs)
		}
		rows = append(rows, row)
	}
	return rows
}

// OverallRow is one bar group of Fig. 5: generation, propagation and
// termination percentages for nodes and arcs, all expressed against the
// paper's nodes+arcs denominator.
type OverallRow struct {
	Name      string
	Predictor string
	NodeGen   float64
	NodeProp  float64
	NodeTerm  float64
	ArcGen    float64
	ArcProp   float64
	ArcTerm   float64
	// UnpredPct is the remainder: elements propagating unpredictability
	// (all-n nodes and <n,n> arcs) plus neutral nodes.
	UnpredPct float64
}

// Overall computes the Fig. 5 row for one run.
func Overall(r *dpg.Result) OverallRow {
	row := OverallRow{
		Name:      r.Name,
		Predictor: r.Predictor,
		NodeGen:   r.Pct(r.NodeGen()),
		NodeProp:  r.Pct(r.NodeProp()),
		NodeTerm:  r.Pct(r.NodeTerm()),
		ArcGen:    r.Pct(r.ArcTotal(dpg.ArcNP)),
		ArcProp:   r.Pct(r.ArcTotal(dpg.ArcPP)),
		ArcTerm:   r.Pct(r.ArcTotal(dpg.ArcPN)),
	}
	row.UnpredPct = 100 - row.NodeGen - row.NodeProp - row.NodeTerm -
		row.ArcGen - row.ArcProp - row.ArcTerm
	return row
}

// GenRow is one bar group of Fig. 6: the generation breakdown.
type GenRow struct {
	Name      string
	Predictor string
	// Arc segments, bottom to top in the paper's stacking.
	ArcWl float64 // <wl:n,p>
	ArcRd float64 // <rd:n,p>
	ArcR  float64 // <r:n,p>
	Arc1  float64 // <1:n,p>
	// Node segments.
	NodeII float64 // i,i->p
	NodeNN float64 // n,n->p
	NodeIN float64 // i,n->p
}

// Generation computes the Fig. 6 row for one run.
func Generation(r *dpg.Result) GenRow {
	return GenRow{
		Name:      r.Name,
		Predictor: r.Predictor,
		ArcWl:     r.Pct(r.ArcCount[dpg.UseWriteOnce][dpg.ArcNP]),
		ArcRd:     r.Pct(r.ArcCount[dpg.UseRepeatedInput][dpg.ArcNP]),
		ArcR:      r.Pct(r.ArcCount[dpg.UseRepeated][dpg.ArcNP]),
		Arc1:      r.Pct(r.ArcCount[dpg.UseSingle][dpg.ArcNP]),
		NodeII:    r.Pct(r.NodeCount[dpg.NodeGenII]),
		NodeNN:    r.Pct(r.NodeCount[dpg.NodeGenNN]),
		NodeIN:    r.Pct(r.NodeCount[dpg.NodeGenIN]),
	}
}

// PropRow is one bar group of Fig. 7: the propagation breakdown.
type PropRow struct {
	Name      string
	Predictor string
	Arc1      float64 // <1:p,p>
	ArcR      float64 // <r:p,p>
	ArcWl     float64 // <wl:p,p>
	ArcRd     float64 // <rd:p,p>
	NodePP    float64 // p,p->p
	NodePI    float64 // p,i->p
	NodePN    float64 // p,n->p
}

// Propagation computes the Fig. 7 row for one run.
func Propagation(r *dpg.Result) PropRow {
	return PropRow{
		Name:      r.Name,
		Predictor: r.Predictor,
		Arc1:      r.Pct(r.ArcCount[dpg.UseSingle][dpg.ArcPP]),
		ArcR:      r.Pct(r.ArcCount[dpg.UseRepeated][dpg.ArcPP]),
		ArcWl:     r.Pct(r.ArcCount[dpg.UseWriteOnce][dpg.ArcPP]),
		ArcRd:     r.Pct(r.ArcCount[dpg.UseRepeatedInput][dpg.ArcPP]),
		NodePP:    r.Pct(r.NodeCount[dpg.NodePropPP]),
		NodePI:    r.Pct(r.NodeCount[dpg.NodePropPI]),
		NodePN:    r.Pct(r.NodeCount[dpg.NodePropPN]),
	}
}

// TermRow is one bar group of Fig. 8: the termination breakdown.
type TermRow struct {
	Name      string
	Predictor string
	Arc1      float64 // <1:p,n>
	ArcR      float64 // <r:p,n>
	ArcWl     float64 // <wl:p,n>
	ArcRd     float64 // <rd:p,n>
	NodePN    float64 // p,n->n
	NodePP    float64 // p,p->n
	NodePI    float64 // p,i->n
}

// Termination computes the Fig. 8 row for one run.
func Termination(r *dpg.Result) TermRow {
	return TermRow{
		Name:      r.Name,
		Predictor: r.Predictor,
		Arc1:      r.Pct(r.ArcCount[dpg.UseSingle][dpg.ArcPN]),
		ArcR:      r.Pct(r.ArcCount[dpg.UseRepeated][dpg.ArcPN]),
		ArcWl:     r.Pct(r.ArcCount[dpg.UseWriteOnce][dpg.ArcPN]),
		ArcRd:     r.Pct(r.ArcCount[dpg.UseRepeatedInput][dpg.ArcPN]),
		NodePN:    r.Pct(r.NodeCount[dpg.NodeTermPN]),
		NodePP:    r.Pct(r.NodeCount[dpg.NodeTermPP]),
		NodePI:    r.Pct(r.NodeCount[dpg.NodeTermPI]),
	}
}

// meanRows averages a slice of float64-field accessors; tiny helper used by
// the exported Average* functions.
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// AverageOverall returns the arithmetic-mean row (the paper's INT/FLOAT
// average bars) labeled name.
func AverageOverall(rows []OverallRow, name string) OverallRow {
	get := func(f func(OverallRow) float64) float64 {
		vals := make([]float64, len(rows))
		for i, r := range rows {
			vals[i] = f(r)
		}
		return mean(vals)
	}
	pred := ""
	if len(rows) > 0 {
		pred = rows[0].Predictor
	}
	return OverallRow{
		Name:      name,
		Predictor: pred,
		NodeGen:   get(func(r OverallRow) float64 { return r.NodeGen }),
		NodeProp:  get(func(r OverallRow) float64 { return r.NodeProp }),
		NodeTerm:  get(func(r OverallRow) float64 { return r.NodeTerm }),
		ArcGen:    get(func(r OverallRow) float64 { return r.ArcGen }),
		ArcProp:   get(func(r OverallRow) float64 { return r.ArcProp }),
		ArcTerm:   get(func(r OverallRow) float64 { return r.ArcTerm }),
		UnpredPct: get(func(r OverallRow) float64 { return r.UnpredPct }),
	}
}

// PathClassRow is the Fig. 9 top graph for one run: the percentage of
// nodes+arcs on predictable paths originating at each generator class
// (elements influenced by several classes count once per class).
type PathClassRow struct {
	Name      string
	Predictor string
	Class     [dpg.NumGenClass]float64
}

// PathClasses computes the Fig. 9 top-graph row for one run.
func PathClasses(r *dpg.Result) PathClassRow {
	row := PathClassRow{Name: r.Name, Predictor: r.Predictor}
	for c := dpg.GenClass(0); c < dpg.NumGenClass; c++ {
		row.Class[c] = r.Pct(r.Path.ClassElems[c])
	}
	return row
}

// AveragePathClasses averages class rows (the paper reports INT averages).
func AveragePathClasses(rows []PathClassRow, name string) PathClassRow {
	out := PathClassRow{Name: name}
	if len(rows) > 0 {
		out.Predictor = rows[0].Predictor
	}
	for c := 0; c < int(dpg.NumGenClass); c++ {
		vals := make([]float64, len(rows))
		for i, r := range rows {
			vals[i] = r.Class[c]
		}
		out.Class[c] = mean(vals)
	}
	return out
}

// ComboShare is one bar of the Fig. 9 bottom graph: the percentage of
// nodes+arcs whose exact influencing class set is Mask.
type ComboShare struct {
	Mask int     // bit c set = class dpg.GenClass(c) present
	Pct  float64 // % of nodes+arcs (counted once)
}

// Label renders the combination as the paper does ("C", "CI", "CDM", ...).
func (cs ComboShare) Label() string {
	if cs.Mask == 0 {
		return "-"
	}
	// Present classes in the paper's order C D W I N M.
	s := ""
	for c := dpg.GenClass(0); c < dpg.NumGenClass; c++ {
		if cs.Mask&(1<<c) != 0 {
			s += c.String()
		}
	}
	return s
}

// Combos averages per-benchmark combination percentages and returns the
// top-n combinations. Following the paper, the ranking (set sizes) comes
// from rankBy (the context-based predictor's results); the same top-24
// combinations are then reported for every predictor.
func Combos(results []*dpg.Result, n int) []ComboShare {
	sums := make([]float64, 1<<dpg.NumGenClass)
	for _, r := range results {
		for mask, cnt := range r.Path.ComboElems {
			sums[mask] += r.Pct(cnt)
		}
	}
	shares := make([]ComboShare, 0, len(sums))
	for mask, s := range sums {
		if mask == 0 {
			continue
		}
		shares = append(shares, ComboShare{Mask: mask, Pct: s / float64(len(results))})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Pct != shares[j].Pct {
			return shares[i].Pct > shares[j].Pct
		}
		return shares[i].Mask < shares[j].Mask
	})
	if len(shares) > n {
		shares = shares[:n]
	}
	return shares
}

// ComboPctFor returns the average percentage for a specific mask across
// results (used to report L/S rows against the C-predictor ranking).
func ComboPctFor(results []*dpg.Result, mask int) float64 {
	var s float64
	for _, r := range results {
		s += r.Pct(r.Path.ComboElems[mask])
	}
	if len(results) == 0 {
		return 0
	}
	return s / float64(len(results))
}
