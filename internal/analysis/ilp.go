package analysis

import (
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// ILPStats quantifies the paper's motivation (§1, and its reference [9],
// Lipasti & Shen, "Exceeding the Dataflow Limit via Value Prediction"):
// how much instruction-level parallelism the dynamic dependence graph
// permits, and how much more becomes available when correctly predicted
// values break true dependences.
//
// The timing model is the classic dataflow limit: unit latency, unbounded
// resources, perfect control prediction (only data dependences constrain
// issue). With value prediction, an operand whose consumer-side prediction
// is correct is available immediately (verification is off the critical
// path, as in speculative execution with eventual confirmation).
type ILPStats struct {
	Name      string
	Predictor string
	// Instructions is the dynamic instruction count.
	Instructions uint64
	// CritPathBase is the dataflow critical path with no prediction;
	// CritPathVP the critical path with value prediction.
	CritPathBase uint64
	CritPathVP   uint64
}

// ILPBase returns instructions per cycle at the dataflow limit.
func (s ILPStats) ILPBase() float64 {
	if s.CritPathBase == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.CritPathBase)
}

// ILPVP returns instructions per cycle with value prediction.
func (s ILPStats) ILPVP() float64 {
	if s.CritPathVP == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.CritPathVP)
}

// Speedup returns the dataflow-limit speedup value prediction buys.
func (s ILPStats) Speedup() float64 {
	if s.CritPathVP == 0 {
		return 0
	}
	return float64(s.CritPathBase) / float64(s.CritPathVP)
}

// ilpReady carries the cycle a value becomes available on both timelines.
type ilpReady struct{ base, vp uint64 }

// ILPSim is the streaming form of the dataflow-limit study: feed events
// one at a time with Observe and read the critical paths with Stats.
// Memory stays O(touched memory words + predictor), independent of trace
// length, so a suite can drive several sims (one per predictor kind) in a
// single pass off a trace-file reader without materializing the events.
type ILPSim struct {
	pred  predictor.Predictor
	regs  [isa.NumRegs]ilpReady
	mem   map[uint32]ilpReady
	stats ILPStats
}

// NewILPSim builds a dataflow-limit simulator. kind selects the value
// predictor used on the prediction side; input operands are predicted per
// (PC, slot) with immediate update, exactly like the model's input side.
func NewILPSim(name string, kind predictor.Kind) *ILPSim {
	return &ILPSim{
		pred:  kind.New(),
		mem:   make(map[uint32]ilpReady),
		stats: ILPStats{Name: name, Predictor: kind.String()},
	}
}

// Observe issues one dynamic instruction on both timelines.
func (s *ILPSim) Observe(e *trace.Event) {
	s.stats.Instructions++
	var inBase, inVP uint64

	key := func(slot int) uint64 { return uint64(e.PC)<<2 | uint64(slot) }
	consume := func(r ilpReady, k uint64, actual uint32) {
		if r.base > inBase {
			inBase = r.base
		}
		pv, ok := s.pred.Predict(k)
		s.pred.Update(k, actual)
		if ok && pv == actual {
			return // predicted: contributes no wait on the VP timeline
		}
		if r.vp > inVP {
			inVP = r.vp
		}
	}

	for slot := 0; slot < int(e.NSrc); slot++ {
		if e.SrcReg[slot] == 0 {
			continue // $0 reads are immediates
		}
		consume(s.regs[e.SrcReg[slot]], key(slot), e.SrcVal[slot])
	}
	if isa.IsLoad(e.Op) {
		consume(s.mem[e.Addr&^3], key(2), e.MemVal)
	}

	doneBase := inBase + 1
	doneVP := inVP + 1
	if doneBase > s.stats.CritPathBase {
		s.stats.CritPathBase = doneBase
	}
	if doneVP > s.stats.CritPathVP {
		s.stats.CritPathVP = doneVP
	}

	// Publish results.
	switch {
	case isa.IsStore(e.Op):
		s.mem[e.Addr&^3] = ilpReady{base: doneBase, vp: doneVP}
	case e.DstReg != isa.NoReg && e.DstReg != 0:
		s.regs[e.DstReg] = ilpReady{base: doneBase, vp: doneVP}
	}
}

// Stats returns the statistics observed so far.
func (s *ILPSim) Stats() ILPStats { return s.stats }

// ILP computes the dataflow-limit statistics for an in-memory trace — the
// materializing façade over ILPSim.
func ILP(t *trace.Trace, kind predictor.Kind) ILPStats {
	sim := NewILPSim(t.Name, kind)
	for i := range t.Events {
		sim.Observe(&t.Events[i])
	}
	return sim.Stats()
}
