package analysis

import (
	"repro/internal/isa"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// ILPStats quantifies the paper's motivation (§1, and its reference [9],
// Lipasti & Shen, "Exceeding the Dataflow Limit via Value Prediction"):
// how much instruction-level parallelism the dynamic dependence graph
// permits, and how much more becomes available when correctly predicted
// values break true dependences.
//
// The timing model is the classic dataflow limit: unit latency, unbounded
// resources, perfect control prediction (only data dependences constrain
// issue). With value prediction, an operand whose consumer-side prediction
// is correct is available immediately (verification is off the critical
// path, as in speculative execution with eventual confirmation).
type ILPStats struct {
	Name      string
	Predictor string
	// Instructions is the dynamic instruction count.
	Instructions uint64
	// CritPathBase is the dataflow critical path with no prediction;
	// CritPathVP the critical path with value prediction.
	CritPathBase uint64
	CritPathVP   uint64
}

// ILPBase returns instructions per cycle at the dataflow limit.
func (s ILPStats) ILPBase() float64 {
	if s.CritPathBase == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.CritPathBase)
}

// ILPVP returns instructions per cycle with value prediction.
func (s ILPStats) ILPVP() float64 {
	if s.CritPathVP == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.CritPathVP)
}

// Speedup returns the dataflow-limit speedup value prediction buys.
func (s ILPStats) Speedup() float64 {
	if s.CritPathVP == 0 {
		return 0
	}
	return float64(s.CritPathBase) / float64(s.CritPathVP)
}

// ILP computes the dataflow-limit statistics for a trace. kind selects the
// value predictor used on the prediction side; input operands are predicted
// per (PC, slot) with immediate update, exactly like the model's input side.
func ILP(t *trace.Trace, kind predictor.Kind) ILPStats {
	stats := ILPStats{Name: t.Name, Predictor: kind.String(), Instructions: uint64(t.Len())}

	pred := kind.New()
	// Ready times per register and memory word, for both timelines.
	type ready struct{ base, vp uint64 }
	var regs [isa.NumRegs]ready
	mem := make(map[uint32]ready)
	var critBase, critVP uint64

	key := func(pc uint32, slot int) uint64 { return uint64(pc)<<2 | uint64(slot) }

	for i := range t.Events {
		e := &t.Events[i]
		var inBase, inVP uint64

		consume := func(r ready, k uint64, actual uint32) {
			if r.base > inBase {
				inBase = r.base
			}
			pv, ok := pred.Predict(k)
			pred.Update(k, actual)
			if ok && pv == actual {
				return // predicted: contributes no wait on the VP timeline
			}
			if r.vp > inVP {
				inVP = r.vp
			}
		}

		for slot := 0; slot < int(e.NSrc); slot++ {
			if e.SrcReg[slot] == 0 {
				continue // $0 reads are immediates
			}
			consume(regs[e.SrcReg[slot]], key(e.PC, slot), e.SrcVal[slot])
		}
		if isa.IsLoad(e.Op) {
			consume(mem[e.Addr&^3], key(e.PC, 2), e.MemVal)
		}

		doneBase := inBase + 1
		doneVP := inVP + 1
		if doneBase > critBase {
			critBase = doneBase
		}
		if doneVP > critVP {
			critVP = doneVP
		}

		// Publish results.
		switch {
		case isa.IsStore(e.Op):
			mem[e.Addr&^3] = ready{base: doneBase, vp: doneVP}
		case e.DstReg != isa.NoReg && e.DstReg != 0:
			regs[e.DstReg] = ready{base: doneBase, vp: doneVP}
		}
	}
	stats.CritPathBase = critBase
	stats.CritPathVP = critVP
	return stats
}
