package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dpg"
	"repro/internal/isa"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "My Title",
		[]string{"name", "value"},
		[][]string{{"alpha", "1.5"}, {"b", "123.0"}})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "My Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if lines[1] != strings.Repeat("=", len("My Title")) {
		t.Errorf("underline = %q", lines[1])
	}
	if !strings.Contains(lines[2], "name") || !strings.Contains(lines[2], "value") {
		t.Errorf("header = %q", lines[2])
	}
	// Numeric cells right-align: "1.5" pads left to width of "value".
	if !strings.Contains(out, "  1.5") {
		t.Errorf("numeric right-alignment missing:\n%s", out)
	}
	// All data rows have equal header-derived prefix widths.
	if len(lines) != 6 {
		t.Errorf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableNoTitle(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "", []string{"a"}, [][]string{{"x"}})
	if strings.Contains(buf.String(), "=") {
		t.Error("no-title table should have no underline")
	}
}

func TestCount(t *testing.T) {
	cases := map[uint64]string{
		0:          "0",
		999:        "999",
		1000:       "1,000",
		123456:     "123,456",
		1234567:    "1,234,567",
		1000000000: "1,000,000,000",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPctFormats(t *testing.T) {
	if Pct(12.34) != "12.3" {
		t.Errorf("Pct = %q", Pct(12.34))
	}
	if Pct2(0.056) != "0.06" {
		t.Errorf("Pct2 = %q", Pct2(0.056))
	}
}

func TestLooksNumeric(t *testing.T) {
	for _, s := range []string{"1", "1.5", "-3", "12%", "1e9"} {
		if !looksNumeric(s) {
			t.Errorf("%q should look numeric", s)
		}
	}
	for _, s := range []string{"", "abc", "a1", "p,p->n"} {
		if looksNumeric(s) {
			t.Errorf("%q should not look numeric", s)
		}
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "trees", []uint32{1, 1024, 2 << 20}, []float64{10, 50, 100})
	out := buf.String()
	for _, want := range []string{"trees", "1: 10.0", "1K: 50.0", "2M:100.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q: %q", want, out)
		}
	}
}

func TestBar(t *testing.T) {
	s := Bar(Segment{"a", 1.25}, Segment{"b", 3})
	if s != "a=1.2 b=3.0" {
		t.Errorf("Bar = %q", s)
	}
}

func TestPredLetter(t *testing.T) {
	cases := map[string]string{
		"last-value": "L", "stride": "S", "context": "C",
		"tage": "T", "ldbp": "D",
		"": "-", "hybrid": "hybrid",
	}
	for in, want := range cases {
		if got := predLetter(in); got != want {
			t.Errorf("predLetter(%q) = %q, want %q", in, got, want)
		}
	}
}

// fakeResult builds a small synthetic Result for renderer tests.
func fakeResult() *dpg.Result {
	r := &dpg.Result{Name: "toy", Predictor: "stride", Nodes: 100, Arcs: 100}
	r.NodeCount[dpg.NodePropPP] = 30
	r.NodeCount[dpg.NodeGenII] = 5
	r.NodeCount[dpg.NodeTermPN] = 10
	r.ArcCount[dpg.UseSingle][dpg.ArcPP] = 40
	r.ArcCount[dpg.UseRepeated][dpg.ArcNP] = 6
	r.ArcCount[dpg.UseWriteOnce][dpg.ArcNP] = 2
	r.Branch.Branches = 10
	r.Branch.Correct = 9
	r.Branch.Count[dpg.NodePropPI] = 9
	r.Branch.Count[dpg.NodeTermPI] = 1
	r.Seq.InstrByLen[2] = 40
	r.Seq.PredictableInstrs = 40
	r.Path.Elems = 70
	r.Path.ClassElems[dpg.GenC] = 60
	r.Path.ComboElems[1<<dpg.GenC] = 55
	r.Path.NumGenHist[1] = 70
	r.Path.DistHist[1] = 70
	r.Trees.Gens = 13
	r.Trees.GensByDepth[1] = 13
	r.Trees.SizeByDepth[1] = 70
	r.Trees.Size = 70
	return r
}

func TestFigureRenderers(t *testing.T) {
	r := fakeResult()
	var buf bytes.Buffer

	WriteTable1(&buf, analysis.Table1([]*dpg.Result{r}))
	WriteOverall(&buf, []analysis.OverallRow{analysis.Overall(r)})
	WriteGeneration(&buf, []analysis.GenRow{analysis.Generation(r)})
	WritePropagation(&buf, []analysis.PropRow{analysis.Propagation(r)})
	WriteTermination(&buf, []analysis.TermRow{analysis.Termination(r)})
	WritePathClasses(&buf, []analysis.PathClassRow{analysis.PathClasses(r)})
	WriteCombos(&buf, analysis.Combos([]*dpg.Result{r}, 24),
		func(int) float64 { return 0 }, func(int) float64 { return 0 })
	WriteTrees(&buf, analysis.Trees(r))
	WriteInfluence(&buf, []analysis.InfluenceCDFs{analysis.Influence(r)})
	WriteSequences(&buf, []analysis.SeqRow{analysis.Sequences(r)})
	WriteBranches(&buf, []analysis.BranchRow{analysis.BranchClasses(r)})

	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
		"Figure 9 (top)", "Figure 9 (bottom)", "Figure 10", "Figure 11",
		"Figure 12", "Figure 13",
		"<wl:n,p>", "p,n->n", "gshare-acc", "toy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderer output missing %q", want)
		}
	}
	// Fig 5 row for the toy result: node prop = 30/200 = 15%.
	if !strings.Contains(out, "15.0") {
		t.Error("expected 15.0% node propagation in output")
	}
}

func TestWriteFragment(t *testing.T) {
	frag := &dpg.Fragment{
		Nodes: []dpg.FragmentNode{
			{ID: 0, PC: 0, Op: isa.OpLi, HasImm: true, Classified: true, Class: dpg.NodeGenII},
			{ID: 1, PC: 1, Op: isa.OpAddi, HasImm: true, Classified: true, Class: dpg.NodePropPI},
			{ID: 2, PC: 2, Op: isa.OpJ, Classified: false},
		},
		Arcs: []dpg.FragmentArc{
			{From: dpg.NodeRef{ID: 0}, To: 1, Label: dpg.ArcPP, Value: 5},
			{From: dpg.NodeRef{ID: 3, D: true}, To: 1, Label: dpg.ArcNP, Value: 9},
		},
	}
	var buf bytes.Buffer
	WriteFragment(&buf, frag, func(pc uint32) string { return "ins@" + Pct(float64(pc)) })
	out := buf.String()
	for _, want := range []string{"3 nodes, 2 arcs", "n0", "(i)", "[i,i->p]", "<p,p>", "D3", "<n,p>", "[-]", "value=0x5"} {
		if !strings.Contains(out, want) {
			t.Errorf("fragment output missing %q:\n%s", want, out)
		}
	}
	// Without a disassembler the opcode name appears.
	buf.Reset()
	WriteFragment(&buf, frag, nil)
	if !strings.Contains(buf.String(), "li") {
		t.Error("fragment without disasm should print mnemonics")
	}
	// Nil fragment is handled.
	buf.Reset()
	WriteFragment(&buf, nil, nil)
	if !strings.Contains(buf.String(), "no DPG fragment") {
		t.Error("nil fragment not reported")
	}
}
