package report

import (
	"fmt"
	"io"

	"repro/internal/dpg"
)

// WriteFragment renders a recorded DPG window as the paper's Fig. 3 does:
// each dynamic node with its classification, and beneath it the labeled
// arcs arriving from its producers. disasm, if non-nil, supplies the
// instruction text for a PC.
func WriteFragment(w io.Writer, frag *dpg.Fragment, disasm func(pc uint32) string) {
	if frag == nil {
		fmt.Fprintln(w, "(no DPG fragment recorded)")
		return
	}
	// Index arcs by consumer.
	byConsumer := make(map[uint64][]dpg.FragmentArc, len(frag.Nodes))
	for _, a := range frag.Arcs {
		byConsumer[a.To] = append(byConsumer[a.To], a)
	}
	fmt.Fprintf(w, "DPG fragment: %d nodes, %d arcs\n", len(frag.Nodes), len(frag.Arcs))
	for _, n := range frag.Nodes {
		ins := n.Op.String()
		if disasm != nil {
			ins = disasm(n.PC)
		}
		class := "-"
		if n.Classified {
			class = n.Class.String()
		}
		imm := ""
		if n.HasImm {
			imm = " (i)"
		}
		fmt.Fprintf(w, "n%-4d pc=%-3d %-24s%s  [%s]\n", n.ID, n.PC, ins, imm, class)
		for _, a := range byConsumer[n.ID] {
			src := fmt.Sprintf("n%d", a.From.ID)
			if a.From.D {
				src = fmt.Sprintf("D%d", a.From.ID)
			}
			fmt.Fprintf(w, "      <-%-6s <%s>  value=%#x\n", src, a.Label, a.Value)
		}
	}
	fmt.Fprintln(w)
}
