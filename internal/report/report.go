// Package report renders the analysis results as aligned text tables and
// series — the same rows and curves the paper's tables and figures show.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes an aligned text table with a title, a header row, and data
// rows. Columns are sized to their widest cell.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintln(w)
}

// pad right-pads (left-aligns) header-ish cells and left-pads numeric cells.
func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	if looksNumeric(s) {
		return strings.Repeat(" ", w-len(s)) + s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c == '.', c == '-', c == '+', c == '%', c == 'e':
		default:
			return false
		}
	}
	return true
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f", v) }

// Pct2 formats a percentage with two decimals (for small fractions like the
// D-node shares of Table 1).
func Pct2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Count formats an integer count with thousands separators.
func Count(v uint64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

// Series writes one named series of (x, y-percent) points on a single line,
// for the paper's cumulative-distribution figures.
func Series(w io.Writer, name string, xs []uint32, ys []float64) {
	fmt.Fprintf(w, "%-22s", name)
	for i := range xs {
		fmt.Fprintf(w, " %s:%5.1f", xLabel(xs[i]), ys[i])
	}
	fmt.Fprintln(w)
}

func xLabel(x uint32) string {
	switch {
	case x >= 1<<20:
		return fmt.Sprintf("%dM", x>>20)
	case x >= 1<<10:
		return fmt.Sprintf("%dK", x>>10)
	default:
		return fmt.Sprintf("%d", x)
	}
}

// Bar renders a stacked-bar value list like "a=1.2 b=3.4" for figure rows.
func Bar(segments ...Segment) string {
	parts := make([]string, len(segments))
	for i, s := range segments {
		parts[i] = fmt.Sprintf("%s=%s", s.Label, Pct(s.Value))
	}
	return strings.Join(parts, " ")
}

// Segment is one labeled value of a stacked bar.
type Segment struct {
	Label string
	Value float64
}
