package report

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/dpg"
)

// WriteAttribution renders the op-group attribution of node classes —
// quantifying the paper's §4.2–4.4 narrative about which instruction kinds
// cause each behaviour.
func WriteAttribution(w io.Writer, rows []analysis.AttributionRow) {
	headers := []string{"class", "total"}
	for g := dpg.OpGroup(0); g < dpg.NumOpGroups; g++ {
		headers = append(headers, g.String())
	}
	data := make([][]string, len(rows))
	for i, r := range rows {
		row := []string{r.Class.String(), Count(r.Total)}
		for g := dpg.OpGroup(0); g < dpg.NumOpGroups; g++ {
			row = append(row, Pct(r.GroupPct[g]))
		}
		data[i] = row
	}
	Table(w, "Attribution: Node Classes by Operation Group (% of class)", headers, data)
}

// WriteHotspots renders the top static generate points. disasm, if
// non-nil, supplies a listing line for a PC.
func WriteHotspots(w io.Writer, name string, rows []analysis.HotspotRow, disasm func(pc uint32) string) {
	headers := []string{"pc", "gens", "gens%", "tree-size", "tree%", "instruction"}
	data := make([][]string, len(rows))
	for i, r := range rows {
		ins := ""
		if disasm != nil {
			ins = disasm(r.PC)
		}
		data[i] = []string{
			fmt.Sprintf("%d", r.PC),
			Count(r.Gens), Pct(r.GensPct),
			Count(r.TreeSize), Pct(r.TreePct),
			ins,
		}
	}
	Table(w, fmt.Sprintf("Generate Points: top static instructions by influenced propagation (%s)", name),
		headers, data)
}

// WriteUnpredictability renders the decomposition of the unpredictability
// remainder — the part of Fig. 5 that the paper leaves unexplored ("study
// of unpredictable values... remains for future research", §6).
func WriteUnpredictability(w io.Writer, rows []analysis.UnpredRow) {
	data := make([][]string, len(rows))
	for i, r := range rows {
		data[i] = []string{
			r.Name, predLetter(r.Predictor),
			Pct(r.NodeII), Pct(r.NodeNN), Pct(r.NodeIN),
			Pct(r.ArcNN), Pct(r.ArcNNSingle),
			Pct(r.Neutral), Pct(r.Total),
		}
	}
	Table(w, "Unpredictability: decomposition of the Fig. 5 remainder (% of nodes+arcs)",
		[]string{"bench", "pred", "i,i->n", "n,n->n", "i,n->n", "<n,n>", "<1:n,n>", "neutral", "total"}, data)
}
