package report

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/dpg"
)

// WriteTable1 renders Table 1 (benchmark characteristics).
func WriteTable1(w io.Writer, rows []analysis.Table1Row) {
	data := make([][]string, len(rows))
	for i, r := range rows {
		data[i] = []string{
			r.Name,
			Count(r.Nodes),
			Count(r.Arcs),
			fmt.Sprintf("%.2f", r.EdgesPerNd),
			Pct2(r.DNodePct),
			Pct2(r.DArcPct),
		}
	}
	Table(w, "Table 1: Benchmark Characteristics",
		[]string{"bench", "nodes", "arcs", "arcs/node", "D-node%", "D-arc%"}, data)
}

// WriteOverall renders Fig. 5 (overall node and arc predictability). Rows
// should be grouped by benchmark with the L/S/C predictors adjacent, ending
// with the INT and FLOAT averages.
func WriteOverall(w io.Writer, rows []analysis.OverallRow) {
	data := make([][]string, len(rows))
	for i, r := range rows {
		data[i] = []string{
			r.Name, predLetter(r.Predictor),
			Pct(r.NodeGen), Pct(r.NodeProp), Pct(r.NodeTerm),
			Pct(r.ArcGen), Pct(r.ArcProp), Pct(r.ArcTerm),
			Pct(r.UnpredPct),
		}
	}
	Table(w, "Figure 5: Overall Node and Arc Predictability (% of nodes+arcs)",
		[]string{"bench", "pred", "n-gen", "n-prop", "n-term", "a-gen", "a-prop", "a-term", "unpred"}, data)
}

// WriteGeneration renders Fig. 6 (node and arc generation breakdown).
func WriteGeneration(w io.Writer, rows []analysis.GenRow) {
	data := make([][]string, len(rows))
	for i, r := range rows {
		data[i] = []string{
			r.Name, predLetter(r.Predictor),
			Pct(r.ArcWl), Pct(r.ArcRd), Pct(r.ArcR), Pct(r.Arc1),
			Pct(r.NodeII), Pct(r.NodeNN), Pct(r.NodeIN),
		}
	}
	Table(w, "Figure 6: Node and Arc Generation (% of nodes+arcs)",
		[]string{"bench", "pred", "<wl:n,p>", "<rd:n,p>", "<r:n,p>", "<1:n,p>", "i,i->p", "n,n->p", "i,n->p"}, data)
}

// WritePropagation renders Fig. 7 (node and arc propagation breakdown).
func WritePropagation(w io.Writer, rows []analysis.PropRow) {
	data := make([][]string, len(rows))
	for i, r := range rows {
		data[i] = []string{
			r.Name, predLetter(r.Predictor),
			Pct(r.Arc1), Pct(r.ArcR), Pct(r.ArcWl), Pct(r.ArcRd),
			Pct(r.NodePP), Pct(r.NodePI), Pct(r.NodePN),
		}
	}
	Table(w, "Figure 7: Node and Arc Propagation (% of nodes+arcs)",
		[]string{"bench", "pred", "<1:p,p>", "<r:p,p>", "<wl:p,p>", "<rd:p,p>", "p,p->p", "p,i->p", "p,n->p"}, data)
}

// WriteTermination renders Fig. 8 (node and arc termination breakdown).
func WriteTermination(w io.Writer, rows []analysis.TermRow) {
	data := make([][]string, len(rows))
	for i, r := range rows {
		data[i] = []string{
			r.Name, predLetter(r.Predictor),
			Pct(r.Arc1), Pct(r.ArcR), Pct(r.ArcWl), Pct(r.ArcRd),
			Pct(r.NodePN), Pct(r.NodePP), Pct(r.NodePI),
		}
	}
	Table(w, "Figure 8: Node and Arc Termination (% of nodes+arcs)",
		[]string{"bench", "pred", "<1:p,n>", "<r:p,n>", "<wl:p,n>", "<rd:p,n>", "p,n->n", "p,p->n", "p,i->n"}, data)
}

// WritePathClasses renders the Fig. 9 top graph: overall contribution of
// each generator class (INT averages per predictor).
func WritePathClasses(w io.Writer, rows []analysis.PathClassRow) {
	data := make([][]string, len(rows))
	for i, r := range rows {
		row := []string{r.Name, predLetter(r.Predictor)}
		for c := dpg.GenClass(0); c < dpg.NumGenClass; c++ {
			row = append(row, Pct(r.Class[c]))
		}
		data[i] = row
	}
	Table(w, "Figure 9 (top): Contribution of Generator Classes to Propagation (% of nodes+arcs, multi-counted)",
		[]string{"set", "pred", "C", "D", "W", "I", "N", "M"}, data)
}

// WriteCombos renders the Fig. 9 bottom graph: exclusive combination sets,
// ranked by the context-based predictor (as in the paper), with the L/S
// percentages for the same combinations alongside.
func WriteCombos(w io.Writer, combos []analysis.ComboShare, lastPct, stridePct func(mask int) float64) {
	data := make([][]string, len(combos))
	for i, cs := range combos {
		data[i] = []string{
			cs.Label(),
			Pct(lastPct(cs.Mask)),
			Pct(stridePct(cs.Mask)),
			Pct(cs.Pct),
		}
	}
	Table(w, "Figure 9 (bottom): Generator Class Combinations (% of nodes+arcs, counted once; ranked by context)",
		[]string{"combo", "L", "S", "C"}, data)
}

// WriteTrees renders Fig. 10: cumulative tree depth and aggregate
// propagation for one run.
func WriteTrees(w io.Writer, tc analysis.TreeCDFs) {
	fmt.Fprintf(w, "Figure 10: Longest Tree Path and Aggregate Propagation (%s, %s predictor)\n", tc.Name, tc.Predictor)
	fmt.Fprintln(w, "cumulative % at longest-path-length <= x")
	Series(w, "trees", tc.Trees.X, tc.Trees.Pct)
	Series(w, "aggregate propagation", tc.Aggregate.X, tc.Aggregate.Pct)
	fmt.Fprintln(w)
}

// WriteInfluence renders Fig. 11 for a set of runs: generates per propagate
// and distance to the earliest generate.
func WriteInfluence(w io.Writer, rows []analysis.InfluenceCDFs) {
	fmt.Fprintln(w, "Figure 11 (top): Number of Generates Influencing a Propagate (cumulative %)")
	for _, r := range rows {
		Series(w, r.Name, r.NumGens.X, r.NumGens.Pct)
		if r.OverflowPct > 0 {
			fmt.Fprintf(w, "  (%s: %.2f%% of propagates exceed the %d-generator tracking cap)\n",
				r.Name, r.OverflowPct, dpg.MaxTrackedGens)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 11 (bottom): Distance to the Earliest Influencing Generate (cumulative %)")
	for _, r := range rows {
		Series(w, r.Name, r.Distance.X, r.Distance.Pct)
	}
	fmt.Fprintln(w)
}

// WriteSequences renders Fig. 12: instructions in predictable sequences by
// length bucket.
func WriteSequences(w io.Writer, rows []analysis.SeqRow) {
	fmt.Fprintln(w, "Figure 12: Predictable Sequence Length (% of instructions in sequences of length x)")
	for _, r := range rows {
		var xs []uint32
		var ys []float64
		for b := 1; b < dpg.HistBuckets; b++ {
			if r.PctByLen[b] == 0 && dpg.BucketLo(b) > 1<<12 {
				break
			}
			xs = append(xs, dpg.BucketHi(b))
			ys = append(ys, r.PctByLen[b])
		}
		Series(w, fmt.Sprintf("%s/%s", r.Name, predLetter(r.Predictor)), xs, ys)
		fmt.Fprintf(w, "  (%s/%s: %.1f%% of instructions fully predictable)\n",
			r.Name, predLetter(r.Predictor), r.PredictablePct)
	}
	fmt.Fprintln(w)
}

// WriteBranches renders Fig. 13: branch predictability behaviour.
func WriteBranches(w io.Writer, rows []analysis.BranchRow) {
	classes := []dpg.NodeClass{
		dpg.NodeGenII, dpg.NodeGenNN, dpg.NodeGenIN,
		dpg.NodePropPP, dpg.NodePropPI, dpg.NodePropPN,
		dpg.NodeUnpredII, dpg.NodeUnpredNN, dpg.NodeUnpredIN,
		dpg.NodeTermPP, dpg.NodeTermPI, dpg.NodeTermPN,
	}
	headers := []string{"set", "pred"}
	for _, c := range classes {
		headers = append(headers, c.String())
	}
	headers = append(headers, "gshare-acc")
	data := make([][]string, len(rows))
	for i, r := range rows {
		row := []string{r.Name, predLetter(r.Predictor)}
		for _, c := range classes {
			row = append(row, Pct(r.Pct[c]))
		}
		row = append(row, Pct(r.Accuracy))
		data[i] = row
	}
	Table(w, "Figure 13: Branch Predictability Behavior (% of branches)", headers, data)
}

func predLetter(name string) string {
	switch name {
	case "last-value":
		return "L"
	case "stride":
		return "S"
	case "context":
		return "C"
	case "tage":
		return "T"
	case "ldbp":
		return "D"
	case "":
		return "-"
	}
	return name
}
