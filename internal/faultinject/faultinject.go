// Package faultinject provides deterministic fault-injecting io.Reader and
// io.Writer wrappers for exercising error and corruption paths: bit flips
// at chosen offsets, truncation after N bytes, injected I/O errors, short
// reads, and seedable scattered corruption. Every wrapper is purely
// deterministic — the same source bytes and parameters always produce the
// same faulty stream — so corruption-matrix tests and fuzz targets built
// on them are reproducible.
package faultinject

import (
	"io"
	"sync/atomic"
	"time"
)

// Flip describes one byte-level corruption: the byte at Offset is XORed
// with XOR as it passes through. XOR with a single set bit is a bit flip;
// 0xFF inverts the byte. A zero XOR is a no-op.
type Flip struct {
	Offset int64
	XOR    byte
}

// flipReader applies Flips to the pass-through stream.
type flipReader struct {
	src   io.Reader
	flips []Flip
	off   int64
}

// NewReader wraps src, applying each flip at its byte offset. Offsets past
// the end of the stream are silently ignored.
func NewReader(src io.Reader, flips ...Flip) io.Reader {
	fs := make([]Flip, len(flips))
	copy(fs, flips)
	return &flipReader{src: src, flips: fs}
}

func (r *flipReader) Read(p []byte) (int, error) {
	n, err := r.src.Read(p)
	for _, f := range r.flips {
		if f.Offset >= r.off && f.Offset < r.off+int64(n) {
			p[f.Offset-r.off] ^= f.XOR
		}
	}
	r.off += int64(n)
	return n, err
}

// truncReader delivers at most n bytes, then a clean EOF.
type truncReader struct {
	src io.Reader
	n   int64
}

// Truncate wraps src so the stream ends cleanly after n bytes — the shape
// of a torn download or a partially written file.
func Truncate(src io.Reader, n int64) io.Reader {
	return &truncReader{src: src, n: n}
}

func (r *truncReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > r.n {
		p = p[:r.n]
	}
	n, err := r.src.Read(p)
	r.n -= int64(n)
	return n, err
}

// errReader delivers n bytes then the injected error.
type errReader struct {
	src io.Reader
	n   int64
	err error
}

// ErrAfter wraps src so reads fail with err once n bytes have been
// delivered — an I/O fault mid-stream, as opposed to clean truncation.
func ErrAfter(src io.Reader, n int64, err error) io.Reader {
	return &errReader{src: src, n: n, err: err}
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, r.err
	}
	if int64(len(p)) > r.n {
		p = p[:r.n]
	}
	n, rerr := r.src.Read(p)
	r.n -= int64(n)
	if rerr == nil && r.n <= 0 {
		// Deliver the final bytes; the next call fails.
		return n, nil
	}
	return n, rerr
}

// shortReader delivers at most max bytes per Read call.
type shortReader struct {
	src io.Reader
	max int
}

// ShortReads wraps src so every Read returns at most max bytes, exercising
// refill and resume paths in buffered consumers.
func ShortReads(src io.Reader, max int) io.Reader {
	if max < 1 {
		max = 1
	}
	return &shortReader{src: src, max: max}
}

func (r *shortReader) Read(p []byte) (int, error) {
	if len(p) > r.max {
		p = p[:r.max]
	}
	return r.src.Read(p)
}

// xorshift64 is the deterministic generator behind Scatter.
type xorshift64 uint64

func (s *xorshift64) next() uint64 {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift64(x)
	return x
}

// scatterReader corrupts roughly one byte in rate, chosen by a seeded RNG.
type scatterReader struct {
	src  io.Reader
	rng  xorshift64
	rate uint64
}

// Scatter wraps src, XOR-corrupting on average one byte in rate with a
// pseudo-random non-zero mask drawn from the seed. The same seed and rate
// always damage the same byte positions the same way.
func Scatter(src io.Reader, seed uint64, rate uint64) io.Reader {
	if rate < 1 {
		rate = 1
	}
	if seed == 0 {
		seed = 1
	}
	return &scatterReader{src: src, rng: xorshift64(seed), rate: rate}
}

func (r *scatterReader) Read(p []byte) (int, error) {
	n, err := r.src.Read(p)
	for i := 0; i < n; i++ {
		v := r.rng.next()
		if v%r.rate == 0 {
			mask := byte(v >> 32)
			if mask == 0 {
				mask = 0x80
			}
			p[i] ^= mask
		}
	}
	return n, err
}

// scrambleReader corrupts every byte of one contiguous region.
type scrambleReader struct {
	src        io.Reader
	off        int64
	start, end int64
	rng        xorshift64
}

// ScrambleRegion wraps src, XOR-corrupting every byte in the n-byte region
// starting at offset start with non-zero pseudo-random masks drawn from
// seed — the shape of a torn sector: total damage inside one contiguous
// range, every byte outside it untouched. The same parameters always
// produce the same faulty stream.
func ScrambleRegion(src io.Reader, start, n int64, seed uint64) io.Reader {
	if seed == 0 {
		seed = 1
	}
	return &scrambleReader{src: src, start: start, end: start + n, rng: xorshift64(seed)}
}

func (r *scrambleReader) Read(p []byte) (int, error) {
	n, err := r.src.Read(p)
	for i := 0; i < n; i++ {
		pos := r.off + int64(i)
		if pos >= r.start && pos < r.end {
			mask := byte(r.rng.next() >> 32)
			if mask == 0 {
				mask = 0x80
			}
			p[i] ^= mask
		}
	}
	r.off += int64(n)
	return n, err
}

// stallReader delivers `after` bytes normally, then sleeps once for d
// before continuing.
type stallReader struct {
	src     io.Reader
	after   int64
	d       time.Duration
	stalled bool
}

// Stall wraps src so the stream pauses for d once `after` bytes have been
// delivered, then continues normally — the shape of a slow or hostile
// client that goes quiet mid-upload. The stall happens exactly once, on
// the first Read at or past the boundary, so the fault is deterministic
// in position (timing granularity is the scheduler's).
func Stall(src io.Reader, after int64, d time.Duration) io.Reader {
	return &stallReader{src: src, after: after, d: d}
}

func (r *stallReader) Read(p []byte) (int, error) {
	if r.after > 0 {
		// Deliver the pre-stall bytes without crossing the boundary, so
		// the pause lands at a reproducible stream offset.
		if int64(len(p)) > r.after {
			p = p[:r.after]
		}
		n, err := r.src.Read(p)
		r.after -= int64(n)
		return n, err
	}
	if !r.stalled {
		r.stalled = true
		time.Sleep(r.d)
	}
	return r.src.Read(p)
}

// flakyReader fails its first n Read calls, then passes through.
type flakyReader struct {
	src      io.Reader
	failures atomic.Int64
	err      error
}

// FlakyReader wraps src so the first failures Read calls return err
// without consuming anything, after which reads pass through untouched —
// the shape of transient I/O (an NFS hiccup, a throttled object store)
// that a retry loop should absorb. It is safe for use under concurrent
// retries.
func FlakyReader(src io.Reader, failures int, err error) io.Reader {
	r := &flakyReader{src: src, err: err}
	r.failures.Store(int64(failures))
	return r
}

func (r *flakyReader) Read(p []byte) (int, error) {
	if r.failures.Add(-1) >= 0 {
		return 0, r.err
	}
	return r.src.Read(p)
}

// truncWriter silently discards everything past n bytes while reporting
// full writes — the shape of a crash after a partial flush.
type truncWriter struct {
	dst io.Writer
	n   int64
}

// TruncateWriter wraps dst so only the first n bytes reach it; later
// writes report success but vanish.
func TruncateWriter(dst io.Writer, n int64) io.Writer {
	return &truncWriter{dst: dst, n: n}
}

func (w *truncWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return len(p), nil
	}
	keep := p
	if int64(len(keep)) > w.n {
		keep = keep[:w.n]
	}
	n, err := w.dst.Write(keep)
	w.n -= int64(n)
	if err != nil {
		return n, err
	}
	return len(p), nil
}

// errWriter accepts n bytes then fails with the injected error.
type errWriter struct {
	dst io.Writer
	n   int64
	err error
}

// ErrAfterWriter wraps dst so writes fail with err once n bytes have been
// accepted — a disk-full or connection-reset mid-stream.
func ErrAfterWriter(dst io.Writer, n int64, err error) io.Writer {
	return &errWriter{dst: dst, n: n, err: err}
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	keep := p
	if int64(len(keep)) > w.n {
		keep = keep[:w.n]
	}
	n, err := w.dst.Write(keep)
	w.n -= int64(n)
	if err != nil {
		return n, err
	}
	if n < len(p) {
		return n, w.err
	}
	return n, nil
}
