package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestFlipReader(t *testing.T) {
	src := payload(64)
	r := NewReader(bytes.NewReader(src), Flip{Offset: 3, XOR: 0xFF}, Flip{Offset: 40, XOR: 0x01})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) {
		t.Fatalf("length %d, want %d", len(got), len(src))
	}
	for i := range src {
		want := src[i]
		switch i {
		case 3:
			want ^= 0xFF
		case 40:
			want ^= 0x01
		}
		if got[i] != want {
			t.Errorf("byte %d: got %#x want %#x", i, got[i], want)
		}
	}
}

func TestFlipReaderAcrossReadBoundaries(t *testing.T) {
	src := payload(64)
	r := NewReader(ShortReads(bytes.NewReader(src), 5), Flip{Offset: 17, XOR: 0x80})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if got[17] != src[17]^0x80 {
		t.Error("flip not applied across short-read boundary")
	}
	if got[16] != src[16] || got[18] != src[18] {
		t.Error("neighbouring bytes damaged")
	}
}

func TestFlipPastEndIgnored(t *testing.T) {
	src := payload(8)
	got, err := io.ReadAll(NewReader(bytes.NewReader(src), Flip{Offset: 100, XOR: 0xFF}))
	if err != nil || !bytes.Equal(got, src) {
		t.Errorf("out-of-range flip altered stream: %v %v", got, err)
	}
}

func TestTruncate(t *testing.T) {
	got, err := io.ReadAll(Truncate(bytes.NewReader(payload(64)), 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("got %d bytes, want 10", len(got))
	}
}

func TestErrAfter(t *testing.T) {
	boom := errors.New("boom")
	r := ErrAfter(bytes.NewReader(payload(64)), 10, boom)
	got, err := io.ReadAll(r)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if len(got) != 10 {
		t.Errorf("got %d bytes before error, want 10", len(got))
	}
}

func TestShortReads(t *testing.T) {
	r := ShortReads(bytes.NewReader(payload(64)), 7)
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if err != nil || n != 7 {
		t.Errorf("first read n=%d err=%v, want 7", n, err)
	}
}

func TestScatterDeterministic(t *testing.T) {
	src := payload(4096)
	read := func() []byte {
		got, err := io.ReadAll(Scatter(bytes.NewReader(src), 42, 16))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	diffs := 0
	for i := range src {
		if a[i] != src[i] {
			diffs++
		}
	}
	if diffs == 0 {
		t.Error("scatter at rate 16 corrupted nothing in 4096 bytes")
	}
	// A different seed must corrupt differently.
	c, err := io.ReadAll(Scatter(bytes.NewReader(src), 43, 16))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption")
	}
}

func TestScrambleRegion(t *testing.T) {
	src := payload(256)
	read := func(seed uint64) []byte {
		got, err := io.ReadAll(ScrambleRegion(ShortReads(bytes.NewReader(src), 7), 100, 20, seed))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a := read(9)
	if !bytes.Equal(a, read(9)) {
		t.Error("same seed produced different corruption")
	}
	for i := range src {
		in := i >= 100 && i < 120
		if in && a[i] == src[i] {
			t.Errorf("byte %d inside region survived", i)
		}
		if !in && a[i] != src[i] {
			t.Errorf("byte %d outside region damaged", i)
		}
	}
	if bytes.Equal(a, read(10)) {
		t.Error("different seeds produced identical corruption")
	}
}

func TestTruncateWriter(t *testing.T) {
	var buf bytes.Buffer
	w := TruncateWriter(&buf, 5)
	n, err := w.Write(payload(10))
	if err != nil || n != 10 {
		t.Errorf("write n=%d err=%v, want full accept", n, err)
	}
	if buf.Len() != 5 {
		t.Errorf("sink received %d bytes, want 5", buf.Len())
	}
	if _, err := w.Write(payload(3)); err != nil {
		t.Errorf("post-truncation write errored: %v", err)
	}
	if buf.Len() != 5 {
		t.Error("bytes leaked past truncation point")
	}
}

func TestErrAfterWriter(t *testing.T) {
	boom := errors.New("disk full")
	var buf bytes.Buffer
	w := ErrAfterWriter(&buf, 5, boom)
	if n, err := w.Write(payload(5)); err != nil || n != 5 {
		t.Errorf("within budget: n=%d err=%v", n, err)
	}
	if n, err := w.Write(payload(3)); !errors.Is(err, boom) || n != 0 {
		t.Errorf("over budget: n=%d err=%v, want boom", n, err)
	}
	// Partial acceptance on the boundary write.
	var buf2 bytes.Buffer
	w2 := ErrAfterWriter(&buf2, 5, boom)
	if n, err := w2.Write(payload(8)); !errors.Is(err, boom) || n != 5 {
		t.Errorf("boundary: n=%d err=%v, want 5+boom", n, err)
	}
}

func TestStall(t *testing.T) {
	src := payload(64)
	const pause = 30 * time.Millisecond
	r := Stall(bytes.NewReader(src), 10, pause)

	// The pre-stall bytes arrive without delay and never cross the
	// boundary in one call.
	head := make([]byte, 32)
	start := time.Now()
	n, err := r.Read(head)
	if err != nil || n != 10 {
		t.Fatalf("pre-stall read: n=%d err=%v, want 10 bytes", n, err)
	}
	if d := time.Since(start); d >= pause {
		t.Errorf("pre-stall read took %v, should not have slept", d)
	}

	// The read at the boundary stalls once, then the stream continues.
	start = time.Now()
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < pause {
		t.Errorf("post-stall read took %v, want >= %v", d, pause)
	}
	got := append(head[:n], rest...)
	if !bytes.Equal(got, src) {
		t.Error("stalled stream delivered different bytes")
	}
}

func TestFlakyReader(t *testing.T) {
	src := payload(32)
	transient := errors.New("transient I/O")
	r := FlakyReader(bytes.NewReader(src), 3, transient)
	buf := make([]byte, 8)
	for i := 0; i < 3; i++ {
		if n, err := r.Read(buf); n != 0 || !errors.Is(err, transient) {
			t.Fatalf("flaky read %d: n=%d err=%v, want injected error", i, n, err)
		}
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Error("recovered stream delivered different bytes")
	}
}

func TestFlakyReaderZeroFailures(t *testing.T) {
	src := payload(16)
	r := FlakyReader(bytes.NewReader(src), 0, errors.New("never"))
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("zero-failure flaky reader altered the stream: %v", err)
	}
}
