// Package isa defines the MIPS-like 32-bit instruction set used by the
// predictability model's execution substrate.
//
// The instruction set deliberately mirrors the SimpleScalar PISA subset that
// the paper's running examples use (Fig. 1 of Sazeides & Smith is expressible
// verbatim): a 32-register integer core, immediate forms, word and byte
// memory operations, compare-and-branch control flow, and a small IEEE-754
// float32 extension so the floating-point workloads exercise real FP value
// sequences. Instructions are represented as decoded structs rather than bit
// patterns; the trace format (internal/trace) is the interchange encoding.
package isa

import "fmt"

// Reg identifies one of the 32 architectural registers. Register 0 is
// hardwired to zero; the predictability model treats reads of $0 as
// immediate operands (part of the instruction), matching the paper's
// treatment of "add $6,$0,$0" as an immediate-class initialisation.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 32

// Zero is the hardwired zero register.
const Zero Reg = 0

// NoReg marks an absent register operand in compact encodings.
const NoReg uint8 = 0xFF

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode values. The groups mirror the operand formats in opInfo.
const (
	OpInvalid Op = iota

	// Three-register ALU: rd <- rs OP rt.
	OpAdd
	OpAddu
	OpSub
	OpSubu
	OpAnd
	OpOr
	OpXor
	OpNor
	OpSlt
	OpSltu
	OpSllv
	OpSrlv
	OpSrav
	OpMul
	OpDiv
	OpDivu
	OpRem
	OpRemu

	// Register-immediate ALU: rd <- rs OP imm.
	OpAddi
	OpAddiu
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpSltiu
	OpSll // shift by immediate amount
	OpSrl
	OpSra

	// Immediate-only: rd <- imm (li, la, lui).
	OpLui
	OpLi
	OpLa

	// Float32 ALU on the integer register file (values are IEEE-754 bit
	// patterns): rd <- rs OP rt.
	OpAddf
	OpSubf
	OpMulf
	OpDivf
	OpCltf // rd <- (rs <f rt) ? 1 : 0
	OpClef // rd <- (rs <=f rt) ? 1 : 0
	OpCeqf // rd <- (rs ==f rt) ? 1 : 0

	// Float32 unary: rd <- OP rs.
	OpAbsf
	OpNegf
	OpCvtsw // int32 -> float32
	OpCvtws // float32 -> int32 (truncating)

	// Memory: loads rd <- mem[rs+imm], stores mem[rs+imm] <- rt.
	OpLw
	OpLb
	OpLbu
	OpSw
	OpSb

	// Conditional branches. Two-source (beq/bne) and one-source
	// (blez/bgtz/bltz/bgez) compare-and-branch; imm is the absolute target
	// instruction index (resolved by the assembler).
	OpBeq
	OpBne
	OpBlez
	OpBgtz
	OpBltz
	OpBgez

	// Jumps. Direct jumps carry the target in imm; jr/jalr take it from rs.
	OpJ
	OpJal
	OpJr
	OpJalr

	// System: in reads the next program-input word into rd (a D-node source
	// in the model); out consumes rs; halt stops execution; nop does nothing.
	OpIn
	OpOut
	OpHalt
	OpNop

	opCount // sentinel
)

// Class groups opcodes by their role in the predictability model.
type Class uint8

// Instruction classes.
const (
	ClassALU     Class = iota // integer and float computation
	ClassLoad                 // memory read (pass-through node)
	ClassStore                // memory write (pass-through node)
	ClassBranch               // conditional branch (gshare-predicted direction)
	ClassJump                 // direct jump (neutral node: no predicted output)
	ClassJumpReg              // register-indirect jump (pass-through node)
	ClassSys                  // in/out/halt/nop
)

// Info describes the static operand shape of an opcode.
type Info struct {
	Name  string
	Class Class

	// HasRd reports whether the instruction writes a destination register.
	HasRd bool
	// HasRs and HasRt report which register source fields are read.
	HasRs bool
	HasRt bool
	// HasImm reports whether the instruction carries an immediate operand
	// that participates in the computation (shift amounts, ALU immediates,
	// load/store offsets). Branch/jump targets are control immediates and
	// are not flagged here, matching the paper's accounting of "immediate
	// instruction values".
	HasImm bool
	// Unary marks single-source float ops (rs only, no rt).
	Unary bool
}

var opInfo = [opCount]Info{
	OpInvalid: {Name: "invalid", Class: ClassSys},

	OpAdd:  {Name: "add", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpAddu: {Name: "addu", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpSub:  {Name: "sub", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpSubu: {Name: "subu", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpAnd:  {Name: "and", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpOr:   {Name: "or", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpXor:  {Name: "xor", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpNor:  {Name: "nor", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpSlt:  {Name: "slt", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpSltu: {Name: "sltu", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpSllv: {Name: "sllv", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpSrlv: {Name: "srlv", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpSrav: {Name: "srav", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpMul:  {Name: "mul", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpDiv:  {Name: "div", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpDivu: {Name: "divu", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpRem:  {Name: "rem", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpRemu: {Name: "remu", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},

	OpAddi:  {Name: "addi", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},
	OpAddiu: {Name: "addiu", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},
	OpAndi:  {Name: "andi", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},
	OpOri:   {Name: "ori", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},
	OpXori:  {Name: "xori", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},
	OpSlti:  {Name: "slti", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},
	OpSltiu: {Name: "sltiu", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},
	OpSll:   {Name: "sll", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},
	OpSrl:   {Name: "srl", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},
	OpSra:   {Name: "sra", Class: ClassALU, HasRd: true, HasRs: true, HasImm: true},

	OpLui: {Name: "lui", Class: ClassALU, HasRd: true, HasImm: true},
	OpLi:  {Name: "li", Class: ClassALU, HasRd: true, HasImm: true},
	OpLa:  {Name: "la", Class: ClassALU, HasRd: true, HasImm: true},

	OpAddf: {Name: "addf", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpSubf: {Name: "subf", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpMulf: {Name: "mulf", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpDivf: {Name: "divf", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpCltf: {Name: "cltf", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpClef: {Name: "clef", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},
	OpCeqf: {Name: "ceqf", Class: ClassALU, HasRd: true, HasRs: true, HasRt: true},

	OpAbsf:  {Name: "absf", Class: ClassALU, HasRd: true, HasRs: true, Unary: true},
	OpNegf:  {Name: "negf", Class: ClassALU, HasRd: true, HasRs: true, Unary: true},
	OpCvtsw: {Name: "cvtsw", Class: ClassALU, HasRd: true, HasRs: true, Unary: true},
	OpCvtws: {Name: "cvtws", Class: ClassALU, HasRd: true, HasRs: true, Unary: true},

	OpLw:  {Name: "lw", Class: ClassLoad, HasRd: true, HasRs: true, HasImm: true},
	OpLb:  {Name: "lb", Class: ClassLoad, HasRd: true, HasRs: true, HasImm: true},
	OpLbu: {Name: "lbu", Class: ClassLoad, HasRd: true, HasRs: true, HasImm: true},
	OpSw:  {Name: "sw", Class: ClassStore, HasRs: true, HasRt: true, HasImm: true},
	OpSb:  {Name: "sb", Class: ClassStore, HasRs: true, HasRt: true, HasImm: true},

	OpBeq:  {Name: "beq", Class: ClassBranch, HasRs: true, HasRt: true},
	OpBne:  {Name: "bne", Class: ClassBranch, HasRs: true, HasRt: true},
	OpBlez: {Name: "blez", Class: ClassBranch, HasRs: true},
	OpBgtz: {Name: "bgtz", Class: ClassBranch, HasRs: true},
	OpBltz: {Name: "bltz", Class: ClassBranch, HasRs: true},
	OpBgez: {Name: "bgez", Class: ClassBranch, HasRs: true},

	OpJ:    {Name: "j", Class: ClassJump},
	OpJal:  {Name: "jal", Class: ClassJump, HasRd: true},
	OpJr:   {Name: "jr", Class: ClassJumpReg, HasRs: true},
	OpJalr: {Name: "jalr", Class: ClassJumpReg, HasRd: true, HasRs: true},

	OpIn:   {Name: "in", Class: ClassSys, HasRd: true},
	OpOut:  {Name: "out", Class: ClassSys, HasRs: true},
	OpHalt: {Name: "halt", Class: ClassSys},
	OpNop:  {Name: "nop", Class: ClassSys},
}

// InfoFor returns the operand metadata for op. It panics for out-of-range
// opcodes, which indicates a corrupted trace or program.
func InfoFor(op Op) Info {
	if op >= opCount {
		panic(fmt.Sprintf("isa: invalid opcode %d", op))
	}
	return opInfo[op]
}

// Valid reports whether op is a defined opcode.
func Valid(op Op) bool { return op > OpInvalid && op < opCount }

// NumOps returns the number of opcode values (including OpInvalid), for
// table sizing.
func NumOps() int { return int(opCount) }

// String returns the mnemonic for op.
func (op Op) String() string {
	if op >= opCount {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opInfo[op].Name
}

// Instruction is one decoded instruction. Field use depends on the opcode:
//
//   - ALU three-register: Rd <- Rs op Rt
//   - ALU immediate:      Rd <- Rs op Imm
//   - loads:              Rd <- mem[Rs+Imm]
//   - stores:             mem[Rs+Imm] <- Rt
//   - branches:           compare Rs (and Rt), Imm = absolute target index
//   - j/jal:              Imm = absolute target index; jal writes Rd (= $ra)
//   - jr/jalr:            target in Rs; jalr writes Rd
type Instruction struct {
	Op  Op
	Rd  Reg
	Rs  Reg
	Rt  Reg
	Imm int32
}

// Info returns the operand metadata for the instruction's opcode.
func (ins Instruction) Info() Info { return InfoFor(ins.Op) }

// String disassembles the instruction.
func (ins Instruction) String() string {
	info := ins.Info()
	switch ins.Op {
	case OpLw, OpLb, OpLbu:
		return fmt.Sprintf("%s $%d, %d($%d)", info.Name, ins.Rd, ins.Imm, ins.Rs)
	case OpSw, OpSb:
		return fmt.Sprintf("%s $%d, %d($%d)", info.Name, ins.Rt, ins.Imm, ins.Rs)
	case OpBeq, OpBne:
		return fmt.Sprintf("%s $%d, $%d, %d", info.Name, ins.Rs, ins.Rt, ins.Imm)
	case OpBlez, OpBgtz, OpBltz, OpBgez:
		return fmt.Sprintf("%s $%d, %d", info.Name, ins.Rs, ins.Imm)
	case OpJ, OpJal:
		return fmt.Sprintf("%s %d", info.Name, ins.Imm)
	case OpJr:
		return fmt.Sprintf("%s $%d", info.Name, ins.Rs)
	case OpJalr:
		return fmt.Sprintf("%s $%d, $%d", info.Name, ins.Rd, ins.Rs)
	case OpIn:
		return fmt.Sprintf("in $%d", ins.Rd)
	case OpOut:
		return fmt.Sprintf("out $%d", ins.Rs)
	case OpHalt, OpNop:
		return info.Name
	case OpLi, OpLa, OpLui:
		return fmt.Sprintf("%s $%d, %d", info.Name, ins.Rd, ins.Imm)
	default:
		if info.Unary {
			return fmt.Sprintf("%s $%d, $%d", info.Name, ins.Rd, ins.Rs)
		}
		if info.HasImm {
			return fmt.Sprintf("%s $%d, $%d, %d", info.Name, ins.Rd, ins.Rs, ins.Imm)
		}
		return fmt.Sprintf("%s $%d, $%d, $%d", info.Name, ins.Rd, ins.Rs, ins.Rt)
	}
}

// Validate checks structural invariants of the instruction (register ranges
// and opcode validity). The assembler produces only valid instructions; this
// guards hand-constructed programs and decoded traces.
func (ins Instruction) Validate() error {
	if !Valid(ins.Op) {
		return fmt.Errorf("isa: invalid opcode %d", uint8(ins.Op))
	}
	if ins.Rd >= NumRegs || ins.Rs >= NumRegs || ins.Rt >= NumRegs {
		return fmt.Errorf("isa: %s: register out of range (rd=%d rs=%d rt=%d)", ins.Op, ins.Rd, ins.Rs, ins.Rt)
	}
	info := InfoFor(ins.Op)
	if info.HasRd && ins.Rd == Zero && info.Class != ClassJump && info.Class != ClassJumpReg {
		// Writing $0 is architecturally a no-op; allow it (programs may use
		// it to discard results) but it is usually an assembler bug, so it
		// is reported by the assembler, not here.
		_ = info
	}
	return nil
}

// IsPassThrough reports whether the model treats this opcode as a
// pass-through node: its output predictability is copied from its data
// input's consumer-side prediction and the output predictor is never
// consulted. Per the paper (§3), memory instructions and register-indirect
// jumps are pass-through and never generate predictability. The `in`
// instruction is likewise pass-through from its D-node source.
func IsPassThrough(op Op) bool {
	switch op {
	case OpLw, OpLb, OpLbu, OpSw, OpSb, OpJr, OpJalr, OpIn:
		return true
	}
	return false
}

// RegName returns the conventional MIPS name for a register number.
func RegName(r Reg) string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("$%d", r)
}

var regNames = [NumRegs]string{
	"$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
	"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
	"$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
	"$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
}

// LookupReg resolves a register name ("$5", "$t0", "$zero") to its number.
func LookupReg(name string) (Reg, bool) {
	if name == "" || name[0] != '$' {
		return 0, false
	}
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	// Numeric form.
	num := 0
	for _, c := range name[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		num = num*10 + int(c-'0')
		if num >= NumRegs {
			return 0, false
		}
	}
	if len(name) == 1 {
		return 0, false
	}
	return Reg(num), true
}
