package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestInfoForAllOps(t *testing.T) {
	for op := Op(1); op < Op(NumOps()); op++ {
		info := InfoFor(op)
		if info.Name == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if op.String() != info.Name {
			t.Errorf("op %d: String()=%q want %q", op, op.String(), info.Name)
		}
	}
}

func TestInfoForPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InfoFor(out of range) did not panic")
		}
	}()
	InfoFor(Op(NumOps()))
}

func TestValid(t *testing.T) {
	if Valid(OpInvalid) {
		t.Error("OpInvalid reported valid")
	}
	if !Valid(OpAdd) || !Valid(OpHalt) {
		t.Error("real opcodes reported invalid")
	}
	if Valid(Op(200)) {
		t.Error("out-of-range opcode reported valid")
	}
}

func TestSourceRegs(t *testing.T) {
	tests := []struct {
		ins  Instruction
		want []Reg
	}{
		{Instruction{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, []Reg{2, 3}},
		{Instruction{Op: OpAddi, Rd: 1, Rs: 2, Imm: 5}, []Reg{2}},
		{Instruction{Op: OpLi, Rd: 1, Imm: 5}, nil},
		{Instruction{Op: OpLw, Rd: 1, Rs: 2, Imm: 8}, []Reg{2}},
		{Instruction{Op: OpSw, Rs: 2, Rt: 3, Imm: 8}, []Reg{2, 3}},
		{Instruction{Op: OpBeq, Rs: 4, Rt: 5}, []Reg{4, 5}},
		{Instruction{Op: OpBlez, Rs: 4}, []Reg{4}},
		{Instruction{Op: OpJ, Imm: 10}, nil},
		{Instruction{Op: OpJal, Rd: 31, Imm: 10}, nil},
		{Instruction{Op: OpJr, Rs: 31}, []Reg{31}},
		{Instruction{Op: OpNegf, Rd: 1, Rs: 2}, []Reg{2}},
		{Instruction{Op: OpCvtsw, Rd: 1, Rs: 2}, []Reg{2}},
		{Instruction{Op: OpIn, Rd: 3}, nil},
		{Instruction{Op: OpOut, Rs: 3}, []Reg{3}},
		{Instruction{Op: OpHalt}, nil},
	}
	for _, tt := range tests {
		regs, n := SourceRegs(tt.ins)
		if n != len(tt.want) {
			t.Errorf("%s: got %d sources, want %d", tt.ins, n, len(tt.want))
			continue
		}
		for i := 0; i < n; i++ {
			if regs[i] != tt.want[i] {
				t.Errorf("%s: slot %d = $%d, want $%d", tt.ins, i, regs[i], tt.want[i])
			}
		}
	}
}

func TestDestReg(t *testing.T) {
	if r, ok := DestReg(Instruction{Op: OpAdd, Rd: 7}); !ok || r != 7 {
		t.Errorf("add dest = %d,%v want 7,true", r, ok)
	}
	if _, ok := DestReg(Instruction{Op: OpSw}); ok {
		t.Error("store reported a register destination")
	}
	if _, ok := DestReg(Instruction{Op: OpBeq}); ok {
		t.Error("branch reported a register destination")
	}
	if r, ok := DestReg(Instruction{Op: OpJal, Rd: 31}); !ok || r != 31 {
		t.Error("jal should write $ra")
	}
}

func TestDataSlot(t *testing.T) {
	tests := []struct {
		op   Op
		slot int
		mem  bool
		ok   bool
	}{
		{OpLw, 0, true, true},
		{OpLb, 0, true, true},
		{OpLbu, 0, true, true},
		{OpIn, 0, true, true},
		{OpSw, 1, false, true},
		{OpSb, 1, false, true},
		{OpJr, 0, false, true},
		{OpJalr, 0, false, true},
		{OpAdd, 0, false, false},
		{OpBeq, 0, false, false},
	}
	for _, tt := range tests {
		slot, mem, ok := DataSlot(tt.op)
		if ok != tt.ok || (ok && (slot != tt.slot || mem != tt.mem)) {
			t.Errorf("DataSlot(%s) = %d,%v,%v want %d,%v,%v", tt.op, slot, mem, ok, tt.slot, tt.mem, tt.ok)
		}
	}
}

func TestPassThroughMatchesDataSlot(t *testing.T) {
	// Every pass-through opcode must have a defined data slot and vice versa.
	for op := Op(1); op < Op(NumOps()); op++ {
		_, _, hasSlot := DataSlot(op)
		if IsPassThrough(op) != hasSlot {
			t.Errorf("%s: IsPassThrough=%v but DataSlot ok=%v", op, IsPassThrough(op), hasSlot)
		}
	}
}

func TestMemWidth(t *testing.T) {
	if MemWidth(OpLw) != 4 || MemWidth(OpSw) != 4 {
		t.Error("word ops should have width 4")
	}
	if MemWidth(OpLb) != 1 || MemWidth(OpLbu) != 1 || MemWidth(OpSb) != 1 {
		t.Error("byte ops should have width 1")
	}
	if MemWidth(OpAdd) != 0 {
		t.Error("non-memory op should have width 0")
	}
}

func TestWritesValue(t *testing.T) {
	tests := []struct {
		op   Op
		want bool
	}{
		{OpAdd, true}, {OpLi, true}, {OpLw, true}, {OpSw, true},
		{OpBeq, true}, {OpJr, true}, {OpJalr, true}, {OpJal, true},
		{OpJ, false}, {OpNop, false}, {OpHalt, false}, {OpOut, false},
		{OpIn, true},
	}
	for _, tt := range tests {
		if got := WritesValue(tt.op); got != tt.want {
			t.Errorf("WritesValue(%s) = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func TestHasImmediateOperand(t *testing.T) {
	tests := []struct {
		ins  Instruction
		want bool
	}{
		{Instruction{Op: OpAddi, Rd: 1, Rs: 2, Imm: 5}, true},
		{Instruction{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, false},
		// The paper's Fig. 1 initialisation: add $6,$0,$0 is immediate-class.
		{Instruction{Op: OpAdd, Rd: 6, Rs: 0, Rt: 0}, true},
		{Instruction{Op: OpAddu, Rd: 6, Rs: 5, Rt: 0}, true},
		{Instruction{Op: OpLi, Rd: 1, Imm: 7}, true},
		// Offset-0 memory addressing carries no immediate value.
		{Instruction{Op: OpLw, Rd: 1, Rs: 2, Imm: 0}, false},
		{Instruction{Op: OpLw, Rd: 1, Rs: 2, Imm: 4}, true},
		{Instruction{Op: OpSw, Rt: 1, Rs: 2, Imm: 0}, false},
		{Instruction{Op: OpJal, Rd: 31, Imm: 4}, true},
		{Instruction{Op: OpBeq, Rs: 2, Rt: 0}, true},
		{Instruction{Op: OpBeq, Rs: 2, Rt: 3}, false},
	}
	for _, tt := range tests {
		if got := HasImmediateOperand(tt.ins); got != tt.want {
			t.Errorf("HasImmediateOperand(%s) = %v, want %v", tt.ins, got, tt.want)
		}
	}
}

func TestIsPassThrough(t *testing.T) {
	pass := []Op{OpLw, OpLb, OpLbu, OpSw, OpSb, OpJr, OpJalr, OpIn}
	for _, op := range pass {
		if !IsPassThrough(op) {
			t.Errorf("%s should be pass-through", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLi, OpBeq, OpJ, OpOut} {
		if IsPassThrough(op) {
			t.Errorf("%s should not be pass-through", op)
		}
	}
}

func TestRegNames(t *testing.T) {
	tests := []struct {
		name string
		reg  Reg
		ok   bool
	}{
		{"$zero", 0, true}, {"$0", 0, true}, {"$t0", 8, true},
		{"$s0", 16, true}, {"$ra", 31, true}, {"$31", 31, true},
		{"$5", 5, true}, {"$32", 0, false}, {"$x9", 0, false},
		{"zero", 0, false}, {"$", 0, false}, {"", 0, false},
	}
	for _, tt := range tests {
		reg, ok := LookupReg(tt.name)
		if ok != tt.ok || (ok && reg != tt.reg) {
			t.Errorf("LookupReg(%q) = %d,%v want %d,%v", tt.name, reg, ok, tt.reg, tt.ok)
		}
	}
}

func TestRegNameRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		name := RegName(r)
		got, ok := LookupReg(name)
		if !ok || got != r {
			t.Errorf("round trip $%d via %q failed: got %d,%v", r, name, got, ok)
		}
	}
}

func TestLookupRegNumericProperty(t *testing.T) {
	// Property: any numeric register string in range resolves to its number.
	f := func(n uint8) bool {
		r := Reg(n % NumRegs)
		got, ok := LookupReg(RegName(r))
		return ok && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassembly(t *testing.T) {
	tests := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, "add $1, $2, $3"},
		{Instruction{Op: OpAddi, Rd: 1, Rs: 2, Imm: -4}, "addi $1, $2, -4"},
		{Instruction{Op: OpLw, Rd: 5, Rs: 4, Imm: 16}, "lw $5, 16($4)"},
		{Instruction{Op: OpSw, Rt: 5, Rs: 4, Imm: 16}, "sw $5, 16($4)"},
		{Instruction{Op: OpBeq, Rs: 2, Rt: 0, Imm: 9}, "beq $2, $0, 9"},
		{Instruction{Op: OpBlez, Rs: 2, Imm: 9}, "blez $2, 9"},
		{Instruction{Op: OpJ, Imm: 3}, "j 3"},
		{Instruction{Op: OpJr, Rs: 31}, "jr $31"},
		{Instruction{Op: OpJalr, Rd: 31, Rs: 8}, "jalr $31, $8"},
		{Instruction{Op: OpIn, Rd: 2}, "in $2"},
		{Instruction{Op: OpOut, Rs: 2}, "out $2"},
		{Instruction{Op: OpHalt}, "halt"},
		{Instruction{Op: OpNop}, "nop"},
		{Instruction{Op: OpLi, Rd: 9, Imm: 42}, "li $9, 42"},
		{Instruction{Op: OpNegf, Rd: 1, Rs: 2}, "negf $1, $2"},
	}
	for _, tt := range tests {
		if got := tt.ins.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Instruction{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instruction rejected: %v", err)
	}
	bad := Instruction{Op: OpInvalid}
	if err := bad.Validate(); err == nil {
		t.Error("invalid opcode accepted")
	}
	badReg := Instruction{Op: OpAdd, Rd: 40}
	if err := badReg.Validate(); err == nil {
		t.Error("out-of-range register accepted")
	}
	if err := badReg.Validate(); err != nil && !strings.Contains(err.Error(), "register") {
		t.Errorf("unexpected error text: %v", err)
	}
}

func TestUnaryOpsHaveSingleSource(t *testing.T) {
	for _, op := range []Op{OpAbsf, OpNegf, OpCvtsw, OpCvtws} {
		_, n := SourceRegs(Instruction{Op: op, Rd: 1, Rs: 2, Rt: 3})
		if n != 1 {
			t.Errorf("%s: got %d sources, want 1", op, n)
		}
	}
}
