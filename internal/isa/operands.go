package isa

// SourceRegs returns the register source operands of ins in canonical slot
// order, without allocating. Slot order matters to the model: input
// predictors are keyed by (PC, slot).
//
//   - three-register ALU: slot0=Rs, slot1=Rt
//   - immediate ALU, unary FP, loads: slot0=Rs
//   - stores: slot0=Rs (address), slot1=Rt (data)
//   - beq/bne: slot0=Rs, slot1=Rt; single-source branches: slot0=Rs
//   - jr/jalr, out: slot0=Rs
//
// Reads of the hardwired zero register are still reported here; callers that
// implement the model's "$0 is an immediate" rule filter them out.
func SourceRegs(ins Instruction) (regs [2]Reg, n int) {
	info := InfoFor(ins.Op)
	if info.HasRs {
		regs[n] = ins.Rs
		n++
	}
	if info.HasRt && !info.Unary {
		regs[n] = ins.Rt
		n++
	}
	return regs, n
}

// DestReg returns the destination register of ins and whether it has one.
// Stores have no register destination (their output is the memory value).
func DestReg(ins Instruction) (Reg, bool) {
	info := InfoFor(ins.Op)
	if !info.HasRd {
		return 0, false
	}
	return ins.Rd, true
}

// DataSlot returns the source slot index that carries the pass-through data
// operand for pass-through opcodes, and whether the data operand is the
// memory value (loads and `in`) rather than a register.
//
//   - loads, in: data is the memory/input value (mem=true, slot unused)
//   - stores:    data is Rt, slot 1
//   - jr/jalr:   data is Rs, slot 0
//
// For non-pass-through opcodes ok is false.
func DataSlot(op Op) (slot int, mem bool, ok bool) {
	switch op {
	case OpLw, OpLb, OpLbu, OpIn:
		return 0, true, true
	case OpSw, OpSb:
		return 1, false, true
	case OpJr, OpJalr:
		return 0, false, true
	}
	return 0, false, false
}

// MemWidth returns the access width in bytes for memory opcodes, or 0.
func MemWidth(op Op) int {
	switch op {
	case OpLw, OpSw:
		return 4
	case OpLb, OpLbu, OpSb:
		return 1
	}
	return 0
}

// IsLoad reports whether op reads memory.
func IsLoad(op Op) bool { return InfoFor(op).Class == ClassLoad }

// IsStore reports whether op writes memory.
func IsStore(op Op) bool { return InfoFor(op).Class == ClassStore }

// IsBranch reports whether op is a conditional branch.
func IsBranch(op Op) bool { return InfoFor(op).Class == ClassBranch }

// WritesValue reports whether the node corresponding to op produces a value
// the model classifies: a register result, a stored memory value, a branch
// direction, or an indirect-jump target. Direct jumps, nop, halt and out
// produce no predicted output and are neutral nodes.
func WritesValue(op Op) bool {
	info := InfoFor(op)
	switch info.Class {
	case ClassStore, ClassBranch, ClassJumpReg:
		return true
	}
	return info.HasRd
}

// HasImmediateOperand reports whether, for the model's node classification,
// ins carries an immediate input. This covers explicit immediates (shift
// amounts, ALU immediates, nonzero load/store offsets), reads of the
// hardwired zero register (the paper treats "add $6,$0,$0" as
// immediate-class), and jal's statically known return address. A memory
// access with offset 0 is pure register addressing and carries no immediate
// value — this distinction matters for workloads like mgrid, which the
// paper singles out for having almost no immediate inputs.
func HasImmediateOperand(ins Instruction) bool {
	info := InfoFor(ins.Op)
	if info.HasImm {
		if MemWidth(ins.Op) != 0 {
			return ins.Imm != 0
		}
		return true
	}
	if ins.Op == OpJal {
		return true
	}
	regs, n := SourceRegs(ins)
	for i := 0; i < n; i++ {
		if regs[i] == Zero {
			return true
		}
	}
	return false
}
