package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the command binaries once into a shared temp dir.
func buildTools(t *testing.T, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range names {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
	}
	return dir
}

// TestCLIPipeline exercises the deliverable binaries end to end: generate a
// trace with tracegen, analyse it with dpgrun, regenerate a figure with
// figures, and compile-and-run a mini-C program with mcc.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	bin := buildTools(t, "tracegen", "dpgrun", "figures", "mcc", "objdump")
	work := t.TempDir()
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// tracegen -> trace file.
	tracePath := filepath.Join(work, "fig1.dpg")
	out := run("tracegen", "-workload", "fig1", "-rounds", "20", "-o", tracePath)
	if !strings.Contains(out, "dynamic instructions") {
		t.Errorf("tracegen output: %q", out)
	}

	// dpgrun consumes the trace.
	out = run("dpgrun", "-trace", tracePath, "-predictor", "stride")
	for _, want := range []string{"Table 1", "Figure 5", "predictor: stride"} {
		if !strings.Contains(out, want) {
			t.Errorf("dpgrun output missing %q", want)
		}
	}

	// dpgrun -graph prints the Fig. 3 fragment.
	out = run("dpgrun", "-workload", "fig1", "-rounds", "2", "-predictor", "stride", "-graph", "8")
	if !strings.Contains(out, "DPG fragment") || !strings.Contains(out, "<n,n>") {
		t.Errorf("dpgrun -graph output missing fragment:\n%s", out)
	}

	// figures regenerates one experiment.
	out = run("figures", "-scale", "0.05", "-experiment", "table1")
	if !strings.Contains(out, "arcs/node") {
		t.Errorf("figures output missing table: %q", out)
	}

	// mcc compiles and runs a program.
	mcPath := filepath.Join(work, "p.mc")
	if err := os.WriteFile(mcPath, []byte("func main() { out(6 * 7); }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run("mcc", mcPath)
	if strings.TrimSpace(out) != "42" {
		t.Errorf("mcc run output = %q, want 42", out)
	}
	out = run("mcc", "-s", mcPath)
	if !strings.Contains(out, "fn_main:") {
		t.Errorf("mcc -s output missing function label: %q", out)
	}

	// objdump lists a workload.
	out = run("objdump", "-workload", "m88")
	for _, want := range []string{"simprog", "static instruction mix", "memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("objdump output missing %q", want)
		}
	}
}
