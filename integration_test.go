package repro

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dpg"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// buildTools compiles the command binaries once into a shared temp dir.
func buildTools(t *testing.T, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range names {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
	}
	return dir
}

// TestCLIPipeline exercises the deliverable binaries end to end: generate a
// trace with tracegen, analyse it with dpgrun, regenerate a figure with
// figures, and compile-and-run a mini-C program with mcc.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	bin := buildTools(t, "tracegen", "dpgrun", "figures", "mcc", "objdump")
	work := t.TempDir()
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// tracegen -> trace file.
	tracePath := filepath.Join(work, "fig1.dpg")
	out := run("tracegen", "-workload", "fig1", "-rounds", "20", "-o", tracePath)
	if !strings.Contains(out, "dynamic instructions") {
		t.Errorf("tracegen output: %q", out)
	}

	// dpgrun consumes the trace.
	out = run("dpgrun", "-trace", tracePath, "-predictor", "stride")
	for _, want := range []string{"Table 1", "Figure 5", "predictor: stride"} {
		if !strings.Contains(out, want) {
			t.Errorf("dpgrun output missing %q", want)
		}
	}

	// dpgrun -speculate produces byte-identical stdout (the stats line
	// goes to stderr, which CombinedOutput folds in — so compare stdout
	// only via a fresh invocation capturing it alone).
	seqCmd := exec.Command(filepath.Join(bin, "dpgrun"), "-trace", tracePath, "-predictor", "stride")
	seqOut, err := seqCmd.Output()
	if err != nil {
		t.Fatalf("dpgrun sequential: %v", err)
	}
	specCmd := exec.Command(filepath.Join(bin, "dpgrun"), "-trace", tracePath, "-predictor", "stride", "-speculate", "2")
	var specErr bytes.Buffer
	specCmd.Stderr = &specErr
	specOut, err := specCmd.Output()
	if err != nil {
		t.Fatalf("dpgrun -speculate: %v\n%s", err, specErr.String())
	}
	if !bytes.Equal(seqOut, specOut) {
		t.Errorf("dpgrun -speculate stdout differs from sequential run")
	}
	if !strings.Contains(specErr.String(), "speculation:") {
		t.Errorf("dpgrun -speculate stderr missing stats line: %q", specErr.String())
	}

	// dpgrun -shards (implying -speculate) also matches the sequential
	// stdout byte for byte, and its stats line reports the shard split.
	shardCmd := exec.Command(filepath.Join(bin, "dpgrun"), "-trace", tracePath, "-predictor", "stride", "-shards", "2")
	var shardErr bytes.Buffer
	shardCmd.Stderr = &shardErr
	shardOut, err := shardCmd.Output()
	if err != nil {
		t.Fatalf("dpgrun -shards: %v\n%s", err, shardErr.String())
	}
	if !bytes.Equal(seqOut, shardOut) {
		t.Errorf("dpgrun -shards stdout differs from sequential run")
	}
	if !strings.Contains(shardErr.String(), "unit shards") {
		t.Errorf("dpgrun -shards stderr missing shard stats: %q", shardErr.String())
	}

	// tracegen -compress: the compressed file is smaller, reports its codec,
	// and dpgrun consumes it with no special flags (readers auto-detect).
	plainInfo, err := os.Stat(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lzPath := filepath.Join(work, "fig1-lz.dpg")
	out = run("tracegen", "-workload", "fig1", "-rounds", "20", "-compress", "lz", "-o", lzPath)
	if !strings.Contains(out, "codec lz") {
		t.Errorf("tracegen -compress output missing codec: %q", out)
	}
	lzInfo, err := os.Stat(lzPath)
	if err != nil {
		t.Fatal(err)
	}
	if lzInfo.Size() >= plainInfo.Size() {
		t.Errorf("compressed trace not smaller: %d vs %d bytes", lzInfo.Size(), plainInfo.Size())
	}
	out = run("dpgrun", "-trace", lzPath, "-predictor", "stride")
	if !strings.Contains(out, "predictor: stride") {
		t.Errorf("dpgrun on compressed trace: %q", out)
	}

	// dpgrun -merge aggregates the directory (one plain + one compressed
	// trace at this point) into a single exact report.
	out = run("dpgrun", "-merge", "-trace", work, "-predictor", "stride", "-shards", "2")
	for _, want := range []string{"merged 2 trace file(s)", "predictor: stride", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dpgrun -merge output missing %q:\n%s", want, out)
		}
	}

	// dpgrun -graph prints the Fig. 3 fragment.
	out = run("dpgrun", "-workload", "fig1", "-rounds", "2", "-predictor", "stride", "-graph", "8")
	if !strings.Contains(out, "DPG fragment") || !strings.Contains(out, "<n,n>") {
		t.Errorf("dpgrun -graph output missing fragment:\n%s", out)
	}

	// figures regenerates one experiment.
	out = run("figures", "-scale", "0.05", "-experiment", "table1")
	if !strings.Contains(out, "arcs/node") {
		t.Errorf("figures output missing table: %q", out)
	}

	// mcc compiles and runs a program.
	mcPath := filepath.Join(work, "p.mc")
	if err := os.WriteFile(mcPath, []byte("func main() { out(6 * 7); }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run("mcc", mcPath)
	if strings.TrimSpace(out) != "42" {
		t.Errorf("mcc run output = %q, want 42", out)
	}
	out = run("mcc", "-s", mcPath)
	if !strings.Contains(out, "fn_main:") {
		t.Errorf("mcc -s output missing function label: %q", out)
	}

	// objdump lists a workload.
	out = run("objdump", "-workload", "m88")
	for _, want := range []string{"simprog", "static instruction mix", "memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("objdump output missing %q", want)
		}
	}
}

// TestCompressionDifferentialWorkloads is the acceptance differential for
// per-block compression: across real workloads × every codec × sequential
// and parallel readers at several worker counts, the decoded event stream
// of a compressed trace must be identical to the original, and the
// transforming codecs must actually shrink real traces.
func TestCompressionDifferentialWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep in -short mode")
	}
	for _, name := range []string{"fig1", "com", "gcc"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		orig, err := w.TraceRounds(w.Rounds/20+1, 1)
		if err != nil {
			t.Fatal(err)
		}
		var plain bytes.Buffer
		if err := trace.WriteAll(&plain, orig); err != nil {
			t.Fatal(err)
		}
		for _, codec := range trace.Codecs() {
			var buf bytes.Buffer
			if err := trace.WriteAll(&buf, orig, trace.Compression(codec)); err != nil {
				t.Fatalf("%s/%s: %v", name, codec, err)
			}
			if codec != trace.CodecNone && buf.Len() >= plain.Len() {
				t.Errorf("%s/%s: compressed stream not smaller: %d vs %d", name, codec, buf.Len(), plain.Len())
			}
			check := func(label string, got *trace.Trace, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", name, codec, label, err)
				}
				if len(got.Events) != len(orig.Events) {
					t.Fatalf("%s/%s/%s: %d events, want %d", name, codec, label, len(got.Events), len(orig.Events))
				}
				for i := range got.Events {
					if got.Events[i] != orig.Events[i] {
						t.Fatalf("%s/%s/%s: event %d differs", name, codec, label, i)
					}
				}
				for i, c := range got.StaticCount {
					if c != orig.StaticCount[i] {
						t.Fatalf("%s/%s/%s: static count %d differs", name, codec, label, i)
					}
				}
			}
			got, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
			check("sequential", got, err)
			for _, workers := range []int{1, 2, 8} {
				pgot, _, perr := trace.ParallelReadAll(bytes.NewReader(buf.Bytes()), trace.Workers(workers))
				check(fmt.Sprintf("parallel-%d", workers), pgot, perr)
			}
		}
	}
}

// TestSpeculationIntegrationSweep is the acceptance differential for the
// epoch-speculative pass at the file level: across real workloads × codecs
// × decode worker counts × speculation chain counts × epoch shapes, the
// full AnalyzeFile result under WithSpeculation must equal the sequential
// analysis of the same file exactly — compression, parallel decode and
// speculative execution composing freely.
func TestSpeculationIntegrationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("speculation sweep in -short mode")
	}
	dir := t.TempDir()
	for _, name := range []string{"fig1", "com", "gcc"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		orig, err := w.TraceRounds(w.Rounds/20+1, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, codec := range []trace.Codec{trace.CodecNone, trace.CodecLZ} {
			path := filepath.Join(dir, fmt.Sprintf("%s-%s.dpg", name, codec))
			if err := trace.WriteFile(path, orig, trace.Compression(codec), trace.BlockBytes(8<<10)); err != nil {
				t.Fatalf("%s/%s: %v", name, codec, err)
			}
			want, err := core.AnalyzeFile(path, core.WithKind(predictor.KindContext))
			if err != nil {
				t.Fatalf("%s/%s baseline: %v", name, codec, err)
			}
			for _, decode := range []int{0, 2} {
				for _, shape := range []struct{ chains, shards int }{
					{1, 0}, {4, 0}, {2, 2}, {0, 4},
				} {
					for _, epochs := range []int{0, 7} {
						label := fmt.Sprintf("%s/%s/decode%d/chains%d/shards%d/epochs%d",
							name, codec, decode, shape.chains, shape.shards, epochs)
						opts := []core.Option{core.WithKind(predictor.KindContext)}
						if shape.chains > 0 {
							opts = append(opts, core.WithSpeculation(shape.chains))
						}
						if shape.shards > 0 {
							opts = append(opts, core.WithSpecShards(shape.shards))
						}
						if decode > 0 {
							opts = append(opts, core.WithWorkers(decode))
						}
						if epochs > 0 {
							opts = append(opts, core.WithSpeculationEpochs(epochs))
						}
						var st dpg.SpecStats
						got, err := core.AnalyzeFile(path, append(opts, core.WithSpecStats(&st))...)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s: speculative result differs from sequential", label)
						}
						if st.Fallback || st.Diverged != 0 || st.Epochs == 0 {
							t.Fatalf("%s: implausible stats %+v", label, st)
						}
						if shape.shards > 0 && st.Shards != shape.shards {
							t.Fatalf("%s: effective shards %d, want %d", label, st.Shards, shape.shards)
						}
					}
				}
			}
		}
	}

	// Capstone: the directory-merge coordinator over the full mixed-codec
	// spread (three workloads × two codecs) equals hand-merging the
	// sequential per-file analyses — sharding and fan-out included.
	paths, err := filepath.Glob(filepath.Join(dir, "*.dpg"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("globbing sweep traces: %v (%d files)", err, len(paths))
	}
	sort.Strings(paths)
	var partials []*dpg.Result
	for _, p := range paths {
		r, err := core.AnalyzeFile(p, core.WithKind(predictor.KindContext))
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, r)
	}
	want, err := dpg.MergeResults(partials...)
	if err != nil {
		t.Fatal(err)
	}
	want.Name = filepath.Base(dir)
	got, files, err := core.AnalyzeDir(dir, 3,
		core.WithKind(predictor.KindContext), core.WithSpecShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(paths) {
		t.Fatalf("merge capstone: %d file results, want %d", len(files), len(paths))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merge capstone: AnalyzeDir aggregate differs from hand-merged sequential analyses")
	}
}
